//! The end-to-end JigSaw entry points (paper §4, Fig. 4) plus the Baseline
//! and EDM reference flows.
//!
//! JigSaw spends half its trial budget on a *global mode* run (all qubits
//! measured, noise-aware compiled) and the other half on Circuits with
//! Partial Measurements, equally split. The CPM local-PMFs then update the
//! global-PMF through Bayesian Reconstruction. JigSaw-M layers CPMs of
//! several sizes and reconstructs hierarchically, largest size first
//! (§4.4.2), so global correlation is preserved before the highest-fidelity
//! small subsets sharpen the answer.
//!
//! [`run_jigsaw`] is a thin wrapper that drives the staged
//! [`JigsawPipeline`](crate::pipeline::JigsawPipeline) end-to-end; callers
//! that need to observe or steer the protocol between stages (artifact
//! reuse across sweeps, adaptive subsetting, per-stage telemetry) use the
//! pipeline directly.

use jigsaw_circuit::Circuit;
use jigsaw_compiler::edm::ensemble;
use jigsaw_compiler::{compile, Compiled, CompilerOptions};
use jigsaw_device::Device;
use jigsaw_pmf::{Counts, Pmf};
use jigsaw_sim::{BackendKind, Executor, RunConfig};

use crate::bayes::{Marginal, ReconstructionConfig};
use crate::pipeline::{JigsawPipeline, StageTimings};
use crate::seed;
use crate::subsets::SubsetSelection;

/// How the subset-mode trial budget is divided among CPMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialAllocation {
    /// Equal trials per CPM — the paper's default (§5.4).
    Equal,
    /// Trials per CPM layer proportional to its outcome-coverage need
    /// (Appendix A.2, Equation 9): larger subsets have exponentially more
    /// outcomes and receive proportionally more trials. Useful for JigSaw-M
    /// under tight budgets, where equal splitting starves the big CPMs.
    CoverageWeighted {
        /// Coverage confidence used for the per-size weight (e.g. 0.99).
        confidence: f64,
    },
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawConfig {
    /// Total trial budget (shared with the baseline for fair comparison).
    pub total_trials: u64,
    /// CPM subset sizes; `[2]` is default JigSaw, `[2, 3, 4, 5]` JigSaw-M.
    /// Sizes not smaller than the program are skipped.
    pub subset_sizes: Vec<usize>,
    /// How subsets are chosen (sliding window by default).
    pub selection: SubsetSelection,
    /// Recompile each CPM with the readout-focused objective (§4.2.2); when
    /// false, CPMs reuse the global compilation's mapping ("JigSaw w/o
    /// recompilation" of Fig. 11).
    pub recompile_cpms: bool,
    /// Fraction of trials spent in global mode (paper default ½).
    pub global_fraction: f64,
    /// Division of the subset-mode budget among CPMs.
    pub allocation: TrialAllocation,
    /// Experiment seed; all stage seeds derive from it (see [`crate::seed`]).
    pub seed: u64,
    /// Executor options.
    pub run: RunConfig,
    /// Compiler options.
    pub compiler: CompilerOptions,
    /// Reconstruction convergence controls.
    pub reconstruction: ReconstructionConfig,
}

impl JigsawConfig {
    /// Default JigSaw: subset size 2, sliding window, recompiled CPMs.
    #[must_use]
    pub fn jigsaw(total_trials: u64) -> Self {
        Self {
            total_trials,
            subset_sizes: vec![2],
            selection: SubsetSelection::SlidingWindow,
            recompile_cpms: true,
            global_fraction: 0.5,
            allocation: TrialAllocation::Equal,
            seed: 0,
            run: RunConfig::default(),
            compiler: CompilerOptions::default(),
            reconstruction: ReconstructionConfig::default(),
        }
    }

    /// Default JigSaw-M: subset sizes 2–5 (paper §4.4).
    #[must_use]
    pub fn jigsaw_m(total_trials: u64) -> Self {
        Self { subset_sizes: vec![2, 3, 4, 5], ..Self::jigsaw(total_trials) }
    }

    /// Disables CPM recompilation (measurement subsetting only).
    #[must_use]
    pub fn without_recompilation(mut self) -> Self {
        self.recompile_cpms = false;
        self
    }

    /// Replaces the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Wire format: one tag byte (`0` equal, `1` coverage-weighted plus its
/// confidence as an exact `f64` bit pattern).
impl jigsaw_pmf::codec::Encode for TrialAllocation {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        match self {
            Self::Equal => w.put_u8(0),
            Self::CoverageWeighted { confidence } => {
                w.put_u8(1);
                w.put_f64(*confidence);
            }
        }
    }
}

impl jigsaw_pmf::codec::Decode for TrialAllocation {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        match r.u8()? {
            0 => Ok(Self::Equal),
            1 => {
                let confidence = r.f64()?;
                // `trials::cpm_trials` asserts 0 < confidence < 1; an
                // out-of-range (or NaN) value arriving over the wire must
                // be a typed decode error, not a panic at selection time.
                if !(confidence > 0.0 && confidence < 1.0) {
                    return Err(jigsaw_pmf::codec::CodecError::InvalidValue {
                        what: "TrialAllocation",
                        detail: format!("coverage confidence {confidence} outside (0, 1)"),
                    });
                }
                Ok(Self::CoverageWeighted { confidence })
            }
            tag => Err(jigsaw_pmf::codec::CodecError::InvalidTag { what: "TrialAllocation", tag }),
        }
    }
}

/// Wire format: every field in declaration order. This is the "producing
/// config" the archive digest covers (together with the program and
/// device), so any semantic knob change — trials, sizes, selection, noise,
/// compiler, reconstruction — changes the digest and makes
/// [`resume_from`](crate::persist::resume_from) refuse a stale archive.
impl jigsaw_pmf::codec::Encode for JigsawConfig {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        w.put_u64(self.total_trials);
        self.subset_sizes.encode(w);
        self.selection.encode(w);
        w.put_bool(self.recompile_cpms);
        w.put_f64(self.global_fraction);
        self.allocation.encode(w);
        w.put_u64(self.seed);
        self.run.encode(w);
        self.compiler.encode(w);
        self.reconstruction.encode(w);
    }
}

impl jigsaw_pmf::codec::Decode for JigsawConfig {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        let config = Self {
            total_trials: r.u64()?,
            subset_sizes: Vec::<usize>::decode(r)?,
            selection: SubsetSelection::decode(r)?,
            recompile_cpms: r.bool()?,
            global_fraction: r.f64()?,
            allocation: TrialAllocation::decode(r)?,
            seed: r.u64()?,
            run: RunConfig::decode(r)?,
            compiler: CompilerOptions::decode(r)?,
            reconstruction: ReconstructionConfig::decode(r)?,
        };
        if !(0.0..=1.0).contains(&config.global_fraction) {
            return Err(jigsaw_pmf::codec::CodecError::InvalidValue {
                what: "JigsawConfig",
                detail: format!("global fraction {} outside [0, 1]", config.global_fraction),
            });
        }
        Ok(config)
    }
}

/// Everything a JigSaw run produces.
///
/// Equality compares the *protocol outputs* (PMFs, marginals, accounting)
/// and deliberately ignores [`Self::timings`]: two runs of the same seed
/// are equal even though their wall clocks differ.
#[derive(Debug, Clone)]
pub struct JigsawResult {
    /// The reconstructed output PMF — JigSaw's answer.
    pub output: Pmf,
    /// The global-mode PMF (the prior), for diagnostics.
    pub global: Pmf,
    /// All CPM marginals, in reconstruction order (largest subsets first).
    pub marginals: Vec<Marginal>,
    /// EPS of the compiled global circuit.
    pub global_eps: f64,
    /// Total reconstruction rounds across the size hierarchy.
    pub rounds: usize,
    /// Trials actually consumed (== the configured budget).
    pub trials_used: u64,
    /// Simulation backend the global-mode run resolved to: the stabilizer
    /// tableau for Clifford programs (which is what lifts the width cap),
    /// the dense state vector otherwise.
    pub backend: BackendKind,
    /// Per-stage telemetry: wall time, trials, backend and support sizes of
    /// every pipeline stage that produced this result.
    pub timings: StageTimings,
}

impl PartialEq for JigsawResult {
    fn eq(&self, other: &Self) -> bool {
        self.output == other.output
            && self.global == other.global
            && self.marginals == other.marginals
            && self.global_eps == other.global_eps
            && self.rounds == other.rounds
            && self.trials_used == other.trials_used
            && self.backend == other.backend
    }
}

/// Wire format: every field in declaration order. Like the stage archives,
/// the encoding is **canonical and telemetry-free** — `StageRecord` walls
/// are excluded on the wire — so two bit-identical runs encode to
/// byte-identical payloads. This is what lets the job server's cache serve
/// duplicate submissions with responses that are provably byte-equal.
impl jigsaw_pmf::codec::Encode for JigsawResult {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        self.output.encode(w);
        self.global.encode(w);
        self.marginals.encode(w);
        w.put_f64(self.global_eps);
        w.put_usize(self.rounds);
        w.put_u64(self.trials_used);
        self.backend.encode(w);
        self.timings.encode(w);
    }
}

impl jigsaw_pmf::codec::Decode for JigsawResult {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        let invalid = |detail: String| jigsaw_pmf::codec::CodecError::InvalidValue {
            what: "JigsawResult",
            detail,
        };
        let result = Self {
            output: Pmf::decode(r)?,
            global: Pmf::decode(r)?,
            marginals: Vec::<Marginal>::decode(r)?,
            global_eps: r.f64()?,
            rounds: r.usize()?,
            trials_used: r.u64()?,
            backend: BackendKind::decode(r)?,
            timings: StageTimings::decode(r)?,
        };
        if result.output.n_bits() != result.global.n_bits() {
            return Err(invalid(format!(
                "{}-bit output for a {}-bit global PMF",
                result.output.n_bits(),
                result.global.n_bits()
            )));
        }
        if result.marginals.iter().any(|m| m.size() >= result.output.n_bits()) {
            return Err(invalid("a marginal spans at least the whole program".into()));
        }
        if !(result.global_eps > 0.0 && result.global_eps <= 1.0) {
            return Err(invalid(format!("global EPS {} outside (0, 1]", result.global_eps)));
        }
        Ok(result)
    }
}

/// Runs the JigSaw (or JigSaw-M, depending on `subset_sizes`) pipeline on a
/// measurement-free program, driving every stage of
/// [`JigsawPipeline`](crate::pipeline::JigsawPipeline) in order.
///
/// # Panics
///
/// Panics if the program declares measurements, the budget is too small to
/// give every stage at least one trial, or no subset size fits the program.
#[must_use]
pub fn run_jigsaw(program: &Circuit, device: &Device, config: &JigsawConfig) -> JigsawResult {
    JigsawPipeline::plan(program, device, config)
        .compile_global()
        .run_global()
        .select_subsets()
        .run_cpms()
        .reconstruct()
}

/// Configuration of the reference flows ([`run_baseline`] / [`run_edm`]):
/// the trial budget plus the options JigSaw shares with them, so
/// policy-vs-policy comparisons run under identical conditions (§5.4).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceConfig {
    /// Total trial budget (matches JigSaw's for fair comparison).
    pub trials: u64,
    /// Experiment seed; stage seeds derive from it (see [`crate::seed`]).
    pub seed: u64,
    /// Executor options.
    pub run: RunConfig,
    /// Compiler options.
    pub compiler: CompilerOptions,
}

impl ReferenceConfig {
    /// A reference run with default executor/compiler options and seed 0.
    #[must_use]
    pub fn new(trials: u64) -> Self {
        Self { trials, seed: 0, run: RunConfig::default(), compiler: CompilerOptions::default() }
    }

    /// Replaces the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the executor options.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Replaces the compiler options.
    #[must_use]
    pub fn with_compiler(mut self, compiler: CompilerOptions) -> Self {
        self.compiler = compiler;
        self
    }
}

/// The baseline flow (§4.1): noise-aware compile, all trials in global mode.
///
/// # Panics
///
/// Panics if the program declares measurements or `config.trials == 0`.
#[must_use]
pub fn run_baseline(program: &Circuit, device: &Device, config: &ReferenceConfig) -> Pmf {
    assert!(program.measurements().is_empty(), "pass the measurement-free program");
    let mut logical = program.clone();
    logical.measure_all();
    let compiled = compile(&logical, device, &config.compiler);
    run_baseline_from(&compiled, device, config)
}

/// The baseline flow executed from an already-compiled global artifact —
/// e.g. [`GlobalCompiled::artifact`](crate::pipeline::GlobalCompiled::artifact),
/// which compiles the identical measure-all circuit. Compilation is
/// deterministic in its inputs, so the result is bit-identical to
/// [`run_baseline`] whenever the artifact came from the same program,
/// device and compiler options; sweep drivers use this to stop paying a
/// second placement search for the baseline column.
#[must_use]
pub fn run_baseline_from(global: &Compiled, device: &Device, config: &ReferenceConfig) -> Pmf {
    Executor::new(device)
        .run(global.circuit(), config.trials, &config.run.with_seed(seed::baseline(config.seed)))
        .to_pmf()
}

/// The EDM baseline \[48\]: `mappings` diverse compilations, trials split
/// equally, histograms merged.
///
/// # Panics
///
/// Panics if the program declares measurements, `mappings == 0`, or the
/// budget gives a mapping zero trials.
#[must_use]
pub fn run_edm(
    program: &Circuit,
    device: &Device,
    mappings: usize,
    config: &ReferenceConfig,
) -> Pmf {
    assert!(program.measurements().is_empty(), "pass the measurement-free program");
    let mut logical = program.clone();
    logical.measure_all();
    let members: Vec<Compiled> = ensemble(&logical, device, mappings, &config.compiler);
    let per_member = (config.trials / mappings as u64).max(1);
    let executor = Executor::new(device);
    let mut merged = Counts::new(logical.n_qubits());
    for (i, member) in members.iter().enumerate() {
        let counts = executor.run(
            member.circuit(),
            per_member,
            &config.run.with_seed(seed::edm_member(config.seed, i)),
        );
        merged.merge(&counts);
    }
    merged.to_pmf()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_circuit::bench;
    use jigsaw_pmf::metrics;
    use jigsaw_sim::resolve_correct_set;

    fn quick_config(trials: u64) -> JigsawConfig {
        JigsawConfig {
            compiler: CompilerOptions { max_seeds: 4, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(trials)
        }
    }

    fn quick_reference(trials: u64, seed: u64) -> ReferenceConfig {
        ReferenceConfig::new(trials)
            .with_seed(seed)
            .with_compiler(CompilerOptions { max_seeds: 4, ..CompilerOptions::default() })
    }

    #[test]
    fn jigsaw_improves_ghz_pst_over_baseline() {
        let device = Device::toronto();
        let b = bench::ghz(8);
        let correct = resolve_correct_set(&b);
        let trials = 6000;

        let baseline = run_baseline(b.circuit(), &device, &quick_reference(trials, 7));
        let jig = run_jigsaw(b.circuit(), &device, &quick_config(trials).with_seed(7));

        let pst_base = metrics::pst(&baseline, &correct);
        let pst_jig = metrics::pst(&jig.output, &correct);
        assert!(pst_jig > pst_base, "JigSaw PST {pst_jig} should beat baseline {pst_base}");
    }

    #[test]
    fn jigsaw_uses_the_configured_budget() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let result = run_jigsaw(b.circuit(), &device, &quick_config(4000));
        // Global half + CPM halves may round down, never up.
        assert!(result.trials_used <= 4000 + 6);
        assert!(result.trials_used >= 3000);
        assert_eq!(result.marginals.len(), 6); // sliding window: n CPMs
    }

    #[test]
    fn jigsaw_m_layers_multiple_sizes() {
        let device = Device::paris();
        let b = bench::ghz(8);
        let config = JigsawConfig {
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(6000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        // Sizes 2..5 × 8 windows = 32 CPMs.
        assert_eq!(result.marginals.len(), 32);
        let mut seen: Vec<usize> = result.marginals.iter().map(Marginal::size).collect();
        seen.dedup();
        assert_eq!(seen, vec![5, 4, 3, 2], "descending size order");
    }

    #[test]
    fn oversized_subsets_are_skipped() {
        let device = Device::toronto();
        let b = bench::ghz(4);
        let config = JigsawConfig {
            subset_sizes: vec![2, 3, 4, 5],
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(2000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        assert!(result.marginals.iter().all(|m| m.size() < 4));
    }

    #[test]
    fn pipeline_reports_the_resolved_backend() {
        let device = Device::toronto();
        let ghz = run_jigsaw(bench::ghz(6).circuit(), &device, &quick_config(1200));
        assert_eq!(ghz.backend, BackendKind::Stabilizer);
        let qaoa = run_jigsaw(bench::qaoa_maxcut(6, 1).circuit(), &device, &quick_config(1200));
        assert_eq!(qaoa.backend, BackendKind::Dense);
    }

    #[test]
    fn wide_clifford_program_runs_end_to_end() {
        // Beyond the dense 2^24 cap: the whole pipeline (global mode, CPM
        // subset mode, reconstruction) must route through the stabilizer
        // backend. Kept small here; the full GHZ-40 acceptance run lives in
        // the workspace integration tests.
        let device = Device::manhattan();
        let b = bench::ghz(28);
        let config = JigsawConfig {
            compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(2000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        assert_eq!(result.backend, BackendKind::Stabilizer);
        assert_eq!(result.output.n_bits(), 28);
        assert_eq!(result.marginals.len(), 28);
        assert!(result.output.total_mass() > 0.999);
    }

    #[test]
    fn pipeline_is_seed_deterministic() {
        let device = Device::toronto();
        let b = bench::bernstein_vazirani(4, 0b101);
        let a = run_jigsaw(b.circuit(), &device, &quick_config(1000).with_seed(3));
        let b2 = run_jigsaw(b.circuit(), &device, &quick_config(1000).with_seed(3));
        assert_eq!(a.output, b2.output);
    }

    #[test]
    fn baseline_from_artifact_matches_run_baseline() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let reference = quick_reference(1500, 4);
        let direct = run_baseline(b.circuit(), &device, &reference);
        let artifact = crate::pipeline::JigsawPipeline::plan(
            b.circuit(),
            &device,
            &quick_config(1500).with_seed(4),
        )
        .compile_global();
        let from_artifact = run_baseline_from(artifact.artifact(), &device, &reference);
        assert_eq!(direct, from_artifact);
    }

    #[test]
    fn edm_merges_all_mappings() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let pmf = run_edm(b.circuit(), &device, 4, &quick_reference(2000, 1));
        assert!((pmf.total_mass() - 1.0).abs() < 1e-9);
        let correct = resolve_correct_set(&b);
        assert!(metrics::pst(&pmf, &correct) > 0.2);
    }

    #[test]
    fn coverage_weighted_allocation_feeds_bigger_cpms() {
        let device = Device::toronto();
        let b = bench::ghz(8);
        let cfg = JigsawConfig {
            subset_sizes: vec![2, 5],
            allocation: TrialAllocation::CoverageWeighted { confidence: 0.99 },
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(8000)
        };
        let result = run_jigsaw(b.circuit(), &device, &cfg);
        // With coverage weighting the size-5 layer gets ~32/4 = 8x the
        // per-CPM budget of size-2; verify via marginal support richness:
        // size-5 marginals should resolve more than 2^2 outcomes.
        let size5_support: usize = result
            .marginals
            .iter()
            .filter(|m| m.size() == 5)
            .map(|m| m.pmf.support_size())
            .max()
            .expect("size-5 layer present");
        assert!(size5_support > 4, "size-5 marginals resolved {size5_support} outcomes");
        assert!(result.trials_used <= 8000 + 16);
    }

    #[test]
    fn result_round_trips_through_the_codec() {
        use jigsaw_pmf::codec::{decode_from_slice, encode_to_vec, CodecError};
        let device = Device::toronto();
        let b = bench::ghz(5);
        let result = run_jigsaw(b.circuit(), &device, &quick_config(900).with_seed(2));
        let bytes = encode_to_vec(&result);
        let back: JigsawResult = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, result);
        // Canonical: re-encoding the decoded value is byte-identical, and
        // a second identical run encodes identically (walls excluded).
        assert_eq!(encode_to_vec(&back), bytes);
        let again = run_jigsaw(b.circuit(), &device, &quick_config(900).with_seed(2));
        assert_eq!(encode_to_vec(&again), bytes);

        // Validation: a corrupted EPS is a typed error.
        let bad = encode_to_vec(&JigsawResult { global_eps: 2.0, ..result.clone() });
        let err = decode_from_slice::<JigsawResult>(&bad).unwrap_err();
        assert!(matches!(err, CodecError::InvalidValue { what: "JigsawResult", .. }), "{err}");
    }

    #[test]
    fn coverage_confidence_is_validated_on_decode() {
        use jigsaw_pmf::codec::{decode_from_slice, encode_to_vec, CodecError};
        for bad in [f64::NAN, 0.0, 1.0, -3.0, f64::INFINITY] {
            let bytes = encode_to_vec(&TrialAllocation::CoverageWeighted { confidence: bad });
            let err = decode_from_slice::<TrialAllocation>(&bytes).unwrap_err();
            assert!(
                matches!(err, CodecError::InvalidValue { what: "TrialAllocation", .. }),
                "confidence {bad} gave {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "measurement-free")]
    fn premeasured_program_rejected() {
        let device = Device::toronto();
        let mut c = bench::ghz(3).circuit().clone();
        c.measure_all();
        let _ = run_jigsaw(&c, &device, &quick_config(100));
    }
}
