//! The end-to-end JigSaw pipeline (paper §4, Fig. 4) plus the Baseline and
//! EDM reference flows.
//!
//! JigSaw spends half its trial budget on a *global mode* run (all qubits
//! measured, noise-aware compiled) and the other half on Circuits with
//! Partial Measurements, equally split. The CPM local-PMFs then update the
//! global-PMF through Bayesian Reconstruction. JigSaw-M layers CPMs of
//! several sizes and reconstructs hierarchically, largest size first
//! (§4.4.2), so global correlation is preserved before the highest-fidelity
//! small subsets sharpen the answer.

use jigsaw_circuit::Circuit;
use jigsaw_compiler::cpm::{cpm_reuse_layout, recompile_cpm};
use jigsaw_compiler::edm::ensemble;
use jigsaw_compiler::{compile, Compiled, CompilerOptions};
use jigsaw_device::Device;
use jigsaw_pmf::{Counts, Pmf};
use jigsaw_sim::{BackendKind, Executor, RunConfig};

use crate::bayes::{reconstruct, Marginal, ReconstructionConfig};
use crate::seed;
use crate::subsets::{generate, SubsetSelection};

/// How the subset-mode trial budget is divided among CPMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialAllocation {
    /// Equal trials per CPM — the paper's default (§5.4).
    Equal,
    /// Trials per CPM layer proportional to its outcome-coverage need
    /// (Appendix A.2, Equation 9): larger subsets have exponentially more
    /// outcomes and receive proportionally more trials. Useful for JigSaw-M
    /// under tight budgets, where equal splitting starves the big CPMs.
    CoverageWeighted {
        /// Coverage confidence used for the per-size weight (e.g. 0.99).
        confidence: f64,
    },
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawConfig {
    /// Total trial budget (shared with the baseline for fair comparison).
    pub total_trials: u64,
    /// CPM subset sizes; `[2]` is default JigSaw, `[2, 3, 4, 5]` JigSaw-M.
    /// Sizes not smaller than the program are skipped.
    pub subset_sizes: Vec<usize>,
    /// How subsets are chosen (sliding window by default).
    pub selection: SubsetSelection,
    /// Recompile each CPM with the readout-focused objective (§4.2.2); when
    /// false, CPMs reuse the global compilation's mapping ("JigSaw w/o
    /// recompilation" of Fig. 11).
    pub recompile_cpms: bool,
    /// Fraction of trials spent in global mode (paper default ½).
    pub global_fraction: f64,
    /// Division of the subset-mode budget among CPMs.
    pub allocation: TrialAllocation,
    /// Experiment seed; all stage seeds derive from it.
    pub seed: u64,
    /// Executor options.
    pub run: RunConfig,
    /// Compiler options.
    pub compiler: CompilerOptions,
    /// Reconstruction convergence controls.
    pub reconstruction: ReconstructionConfig,
}

impl JigsawConfig {
    /// Default JigSaw: subset size 2, sliding window, recompiled CPMs.
    #[must_use]
    pub fn jigsaw(total_trials: u64) -> Self {
        Self {
            total_trials,
            subset_sizes: vec![2],
            selection: SubsetSelection::SlidingWindow,
            recompile_cpms: true,
            global_fraction: 0.5,
            allocation: TrialAllocation::Equal,
            seed: 0,
            run: RunConfig::default(),
            compiler: CompilerOptions::default(),
            reconstruction: ReconstructionConfig::default(),
        }
    }

    /// Default JigSaw-M: subset sizes 2–5 (paper §4.4).
    #[must_use]
    pub fn jigsaw_m(total_trials: u64) -> Self {
        Self { subset_sizes: vec![2, 3, 4, 5], ..Self::jigsaw(total_trials) }
    }

    /// Disables CPM recompilation (measurement subsetting only).
    #[must_use]
    pub fn without_recompilation(mut self) -> Self {
        self.recompile_cpms = false;
        self
    }

    /// Replaces the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything a JigSaw run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawResult {
    /// The reconstructed output PMF — JigSaw's answer.
    pub output: Pmf,
    /// The global-mode PMF (the prior), for diagnostics.
    pub global: Pmf,
    /// All CPM marginals, in reconstruction order (largest subsets first).
    pub marginals: Vec<Marginal>,
    /// EPS of the compiled global circuit.
    pub global_eps: f64,
    /// Total reconstruction rounds across the size hierarchy.
    pub rounds: usize,
    /// Trials actually consumed (== the configured budget).
    pub trials_used: u64,
    /// Simulation backend the global-mode run resolved to: the stabilizer
    /// tableau for Clifford programs (which is what lifts the width cap),
    /// the dense state vector otherwise.
    pub backend: BackendKind,
}

/// Runs the JigSaw (or JigSaw-M, depending on `subset_sizes`) pipeline on a
/// measurement-free program.
///
/// # Panics
///
/// Panics if the program declares measurements, the budget is too small to
/// give every stage at least one trial, or no subset size fits the program.
#[must_use]
pub fn run_jigsaw(program: &Circuit, device: &Device, config: &JigsawConfig) -> JigsawResult {
    assert!(
        program.measurements().is_empty(),
        "pass the measurement-free program; JigSaw chooses what to measure"
    );
    let n = program.n_qubits();

    let mut sizes: Vec<usize> =
        config.subset_sizes.iter().copied().filter(|&s| s >= 1 && s < n).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a)); // descending: §4.4.2 ordering
    sizes.dedup();
    assert!(!sizes.is_empty(), "no subset size fits a {n}-qubit program");

    // --- Global mode -----------------------------------------------------
    let global_trials =
        ((config.total_trials as f64 * config.global_fraction).round() as u64).max(1);
    let mut global_logical = program.clone();
    global_logical.measure_all();
    let global_compiled = compile(&global_logical, device, &config.compiler);
    let executor = Executor::new(device);
    let backend = executor.backend_for(global_compiled.circuit(), &config.run);
    let global_counts = executor.run(
        global_compiled.circuit(),
        global_trials,
        &config.run.with_seed(seed::mix(config.seed, 0)),
    );
    let global_pmf = global_counts.to_pmf();

    // --- Subset mode ------------------------------------------------------
    let subset_lists: Vec<(usize, Vec<Vec<usize>>)> = sizes
        .iter()
        .map(|&s| (s, generate(n, s, config.selection, seed::mix(config.seed, 1000 + s as u64))))
        .collect();
    let cpm_count: usize = subset_lists.iter().map(|(_, subs)| subs.len()).sum();
    let subset_trials = config.total_trials.saturating_sub(global_trials);

    // Per-CPM budgets. Equal split is the paper's default; the
    // coverage-weighted split (Appendix A.2's "fine-tuned" option) gives a
    // size-s CPM budget proportional to its outcome-coverage need.
    let budgets: Vec<(usize, u64)> = match config.allocation {
        TrialAllocation::Equal => {
            let per = (subset_trials / cpm_count.max(1) as u64).max(1);
            subset_lists.iter().map(|(s, subs)| (*s, per * subs.len() as u64)).collect()
        }
        TrialAllocation::CoverageWeighted { confidence } => {
            let weights: Vec<(usize, f64)> = subset_lists
                .iter()
                .map(|(s, subs)| {
                    (*s, crate::trials::cpm_trials(*s, confidence) as f64 * subs.len() as f64)
                })
                .collect();
            let total_weight: f64 = weights.iter().map(|(_, w)| w).sum();
            weights
                .into_iter()
                .map(|(s, w)| (s, ((subset_trials as f64 * w / total_weight) as u64).max(1)))
                .collect()
        }
    };

    // Collect every CPM's work order up front, then fan out: each CPM
    // compiles and executes independently of the others, so the subset mode
    // is embarrassingly parallel. Seeds are pinned to the CPM index and
    // results keep work-list order, so any thread count reproduces the
    // serial histograms bit-for-bit.
    let mut work: Vec<(Vec<usize>, u64, u64)> = Vec::with_capacity(cpm_count);
    let mut cpm_index = 0u64;
    for ((_, subs), &(_, layer_budget)) in subset_lists.iter().zip(&budgets) {
        let per_cpm = (layer_budget / subs.len() as u64).max(1);
        for subset in subs {
            work.push((subset.clone(), per_cpm, seed::mix(config.seed, 2000 + cpm_index)));
            cpm_index += 1;
        }
    }
    let trials_used = global_trials + work.iter().map(|(_, per_cpm, _)| per_cpm).sum::<u64>();

    let run_cpm = |(subset, per_cpm, run_seed): (Vec<usize>, u64, u64)| -> Marginal {
        // Inner executor runs stay serial here: the fan-out already uses
        // the worker team, and nested teams would oversubscribe cores.
        let cpm_run = config.run.with_seed(run_seed).with_threads(1);
        let counts = if config.recompile_cpms {
            let compiled = recompile_cpm(program, &subset, device, &config.compiler);
            executor.run(compiled.circuit(), per_cpm, &cpm_run)
        } else {
            let circuit = cpm_reuse_layout(&global_compiled, &subset);
            executor.run(&circuit, per_cpm, &cpm_run)
        };
        Marginal::new(subset, counts.to_pmf())
    };

    let marginals: Vec<Marginal> = jigsaw_sim::parallel::fan_out(work, config.run.threads, run_cpm);

    // --- Reconstruction (hierarchical, largest size first) ----------------
    // The sharded reconstruction passes run on the same worker-team setting
    // as the rest of the pipeline: RunConfig::threads overrides whatever the
    // reconstruction config carries, so one knob governs every stage.
    let reconstruction = config.reconstruction.with_threads(config.run.threads);
    let mut current = global_pmf.clone();
    let mut rounds = 0;
    for (size, _) in &subset_lists {
        let layer: Vec<Marginal> =
            marginals.iter().filter(|m| m.size() == *size).cloned().collect();
        let r = reconstruct(&current, &layer, &reconstruction);
        current = r.pmf;
        rounds += r.rounds;
    }

    JigsawResult {
        output: current,
        global: global_pmf,
        marginals,
        global_eps: global_compiled.eps,
        rounds,
        trials_used,
        backend,
    }
}

/// The baseline flow (§4.1): noise-aware compile, all trials in global mode.
///
/// # Panics
///
/// Panics if the program declares measurements or `trials == 0`.
#[must_use]
pub fn run_baseline(
    program: &Circuit,
    device: &Device,
    trials: u64,
    seed_value: u64,
    run: &RunConfig,
    compiler_options: &CompilerOptions,
) -> Pmf {
    assert!(program.measurements().is_empty(), "pass the measurement-free program");
    let mut logical = program.clone();
    logical.measure_all();
    let compiled = compile(&logical, device, compiler_options);
    Executor::new(device)
        .run(compiled.circuit(), trials, &run.with_seed(seed::mix(seed_value, 0xBA5E)))
        .to_pmf()
}

/// The EDM baseline \[48\]: `mappings` diverse compilations, trials split
/// equally, histograms merged.
///
/// # Panics
///
/// Panics if the program declares measurements, `mappings == 0`, or the
/// budget gives a mapping zero trials.
#[must_use]
pub fn run_edm(
    program: &Circuit,
    device: &Device,
    trials: u64,
    mappings: usize,
    seed_value: u64,
    run: &RunConfig,
    compiler_options: &CompilerOptions,
) -> Pmf {
    assert!(program.measurements().is_empty(), "pass the measurement-free program");
    let mut logical = program.clone();
    logical.measure_all();
    let members: Vec<Compiled> = ensemble(&logical, device, mappings, compiler_options);
    let per_member = (trials / mappings as u64).max(1);
    let executor = Executor::new(device);
    let mut merged = Counts::new(logical.n_qubits());
    for (i, member) in members.iter().enumerate() {
        let counts = executor.run(
            member.circuit(),
            per_member,
            &run.with_seed(seed::mix(seed_value, 0xED0 + i as u64)),
        );
        merged.merge(&counts);
    }
    merged.to_pmf()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_circuit::bench;
    use jigsaw_pmf::metrics;
    use jigsaw_sim::resolve_correct_set;

    fn quick_config(trials: u64) -> JigsawConfig {
        JigsawConfig {
            compiler: CompilerOptions { max_seeds: 4, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(trials)
        }
    }

    #[test]
    fn jigsaw_improves_ghz_pst_over_baseline() {
        let device = Device::toronto();
        let b = bench::ghz(8);
        let correct = resolve_correct_set(&b);
        let trials = 6000;

        let baseline = run_baseline(
            b.circuit(),
            &device,
            trials,
            7,
            &RunConfig::default(),
            &CompilerOptions { max_seeds: 4, ..CompilerOptions::default() },
        );
        let jig = run_jigsaw(b.circuit(), &device, &quick_config(trials).with_seed(7));

        let pst_base = metrics::pst(&baseline, &correct);
        let pst_jig = metrics::pst(&jig.output, &correct);
        assert!(pst_jig > pst_base, "JigSaw PST {pst_jig} should beat baseline {pst_base}");
    }

    #[test]
    fn jigsaw_uses_the_configured_budget() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let result = run_jigsaw(b.circuit(), &device, &quick_config(4000));
        // Global half + CPM halves may round down, never up.
        assert!(result.trials_used <= 4000 + 6);
        assert!(result.trials_used >= 3000);
        assert_eq!(result.marginals.len(), 6); // sliding window: n CPMs
    }

    #[test]
    fn jigsaw_m_layers_multiple_sizes() {
        let device = Device::paris();
        let b = bench::ghz(8);
        let config = JigsawConfig {
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(6000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        // Sizes 2..5 × 8 windows = 32 CPMs.
        assert_eq!(result.marginals.len(), 32);
        let mut seen: Vec<usize> = result.marginals.iter().map(Marginal::size).collect();
        seen.dedup();
        assert_eq!(seen, vec![5, 4, 3, 2], "descending size order");
    }

    #[test]
    fn oversized_subsets_are_skipped() {
        let device = Device::toronto();
        let b = bench::ghz(4);
        let config = JigsawConfig {
            subset_sizes: vec![2, 3, 4, 5],
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(2000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        assert!(result.marginals.iter().all(|m| m.size() < 4));
    }

    #[test]
    fn pipeline_reports_the_resolved_backend() {
        let device = Device::toronto();
        let ghz = run_jigsaw(bench::ghz(6).circuit(), &device, &quick_config(1200));
        assert_eq!(ghz.backend, BackendKind::Stabilizer);
        let qaoa = run_jigsaw(bench::qaoa_maxcut(6, 1).circuit(), &device, &quick_config(1200));
        assert_eq!(qaoa.backend, BackendKind::Dense);
    }

    #[test]
    fn wide_clifford_program_runs_end_to_end() {
        // Beyond the dense 2^24 cap: the whole pipeline (global mode, CPM
        // subset mode, reconstruction) must route through the stabilizer
        // backend. Kept small here; the full GHZ-40 acceptance run lives in
        // the workspace integration tests.
        let device = Device::manhattan();
        let b = bench::ghz(28);
        let config = JigsawConfig {
            compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(2000)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        assert_eq!(result.backend, BackendKind::Stabilizer);
        assert_eq!(result.output.n_bits(), 28);
        assert_eq!(result.marginals.len(), 28);
        assert!(result.output.total_mass() > 0.999);
    }

    #[test]
    fn pipeline_is_seed_deterministic() {
        let device = Device::toronto();
        let b = bench::bernstein_vazirani(4, 0b101);
        let a = run_jigsaw(b.circuit(), &device, &quick_config(1000).with_seed(3));
        let b2 = run_jigsaw(b.circuit(), &device, &quick_config(1000).with_seed(3));
        assert_eq!(a.output, b2.output);
    }

    #[test]
    fn edm_merges_all_mappings() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let pmf = run_edm(
            b.circuit(),
            &device,
            2000,
            4,
            1,
            &RunConfig::default(),
            &CompilerOptions { max_seeds: 4, ..CompilerOptions::default() },
        );
        assert!((pmf.total_mass() - 1.0).abs() < 1e-9);
        let correct = resolve_correct_set(&b);
        assert!(metrics::pst(&pmf, &correct) > 0.2);
    }

    #[test]
    fn coverage_weighted_allocation_feeds_bigger_cpms() {
        let device = Device::toronto();
        let b = bench::ghz(8);
        let cfg = JigsawConfig {
            subset_sizes: vec![2, 5],
            allocation: TrialAllocation::CoverageWeighted { confidence: 0.99 },
            compiler: CompilerOptions { max_seeds: 3, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw_m(8000)
        };
        let result = run_jigsaw(b.circuit(), &device, &cfg);
        // With coverage weighting the size-5 layer gets ~32/4 = 8x the
        // per-CPM budget of size-2; verify via marginal support richness:
        // size-5 marginals should resolve more than 2^2 outcomes.
        let size5_support: usize = result
            .marginals
            .iter()
            .filter(|m| m.size() == 5)
            .map(|m| m.pmf.support_size())
            .max()
            .expect("size-5 layer present");
        assert!(size5_support > 4, "size-5 marginals resolved {size5_support} outcomes");
        assert!(result.trials_used <= 8000 + 16);
    }

    #[test]
    #[should_panic(expected = "measurement-free")]
    fn premeasured_program_rejected() {
        let device = Device::toronto();
        let mut c = bench::ghz(3).circuit().clone();
        c.measure_all();
        let _ = run_jigsaw(&c, &device, &quick_config(100));
    }
}
