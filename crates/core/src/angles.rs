//! QAOA angle optimisation on the noiseless simulator — the optional
//! refinement step beyond the deterministic linear-ramp schedule
//! (`jigsaw_circuit::qaoa::QaoaAngles::linear_ramp`).
//!
//! A round-robin coordinate descent over (γ, β) maximising the ideal-state
//! expected cut. Deterministic (no RNG), so optimised benchmarks remain
//! reproducible.

use jigsaw_circuit::qaoa::{qaoa_circuit, Graph, QaoaAngles};
use jigsaw_sim::ideal_pmf;

/// Optimiser controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngleOptimizerConfig {
    /// Full coordinate-descent sweeps over all angles.
    pub sweeps: usize,
    /// Initial line-search step (radians); halves every sweep.
    pub initial_step: f64,
}

impl Default for AngleOptimizerConfig {
    fn default() -> Self {
        Self { sweeps: 3, initial_step: 0.15 }
    }
}

/// Refines an angle schedule by coordinate descent on the noiseless
/// expected cut. Returns the improved schedule and its approximation ratio.
///
/// # Panics
///
/// Panics if the graph is wider than the simulator cap (24 qubits).
#[must_use]
pub fn optimize_angles(
    graph: &Graph,
    start: &QaoaAngles,
    config: &AngleOptimizerConfig,
) -> (QaoaAngles, f64) {
    let evaluate = |angles: &QaoaAngles| -> f64 {
        let pmf = ideal_pmf(&qaoa_circuit(graph, angles));
        graph.approximation_ratio(&pmf)
    };

    let mut best = start.clone();
    let mut best_score = evaluate(&best);
    let mut step = config.initial_step;
    let p = best.layers();

    for _ in 0..config.sweeps {
        for coord in 0..2 * p {
            // Try ± step on one coordinate; keep any improvement.
            for direction in [1.0, -1.0] {
                let mut candidate = best.clone();
                let slot = if coord < p {
                    &mut candidate.gammas[coord]
                } else {
                    &mut candidate.betas[coord - p]
                };
                *slot += direction * step;
                let score = evaluate(&candidate);
                if score > best_score + 1e-12 {
                    best = candidate;
                    best_score = score;
                    break;
                }
            }
        }
        step /= 2.0;
    }
    (best, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimiser_never_regresses() {
        let graph = Graph::path(8);
        let start = QaoaAngles::linear_ramp(1);
        let start_score = {
            let pmf = ideal_pmf(&qaoa_circuit(&graph, &start));
            graph.approximation_ratio(&pmf)
        };
        let (_, best) = optimize_angles(&graph, &start, &AngleOptimizerConfig::default());
        assert!(best >= start_score - 1e-12, "{best} < {start_score}");
    }

    #[test]
    fn optimiser_improves_a_bad_start() {
        let graph = Graph::path(6);
        let bad = QaoaAngles::new(vec![0.05], vec![0.05]);
        let bad_score = {
            let pmf = ideal_pmf(&qaoa_circuit(&graph, &bad));
            graph.approximation_ratio(&pmf)
        };
        let config = AngleOptimizerConfig { sweeps: 5, initial_step: 0.2 };
        let (tuned, score) = optimize_angles(&graph, &bad, &config);
        assert!(score > bad_score + 0.05, "{bad_score} -> {score}");
        assert_eq!(tuned.layers(), 1);
    }

    #[test]
    fn optimiser_is_deterministic() {
        let graph = Graph::ring(6);
        let start = QaoaAngles::linear_ramp(2);
        let a = optimize_angles(&graph, &start, &AngleOptimizerConfig::default());
        let b = optimize_angles(&graph, &start, &AngleOptimizerConfig::default());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn ramp_p1_is_near_a_local_optimum() {
        // The scanned (−0.4, 0.4) optimum should leave little headroom.
        let graph = Graph::path(8);
        let start = QaoaAngles::linear_ramp(1);
        let (_, best) = optimize_angles(&graph, &start, &AngleOptimizerConfig::default());
        let start_score = {
            let pmf = ideal_pmf(&qaoa_circuit(&graph, &start));
            graph.approximation_ratio(&pmf)
        };
        assert!(best - start_score < 0.02, "headroom {}", best - start_score);
    }
}
