//! Scoring helpers bundling the paper's three generic figures of merit
//! (§5.5): PST, IST and Fidelity.

use jigsaw_pmf::{metrics, BitString, Pmf};

/// A policy's scores on one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// Probability of a Successful Trial (Equation 1).
    pub pst: f64,
    /// Inference Strength (Equation 2).
    pub ist: f64,
    /// Fidelity `1 − TVD` against the noiseless distribution (Equation 3).
    pub fidelity: f64,
}

impl Scores {
    /// Scores an output distribution against the noiseless reference and the
    /// correct-answer set.
    #[must_use]
    pub fn of(output: &Pmf, ideal: &Pmf, correct: &[BitString]) -> Self {
        Self {
            pst: metrics::pst(output, correct),
            ist: metrics::ist(output, correct),
            fidelity: metrics::fidelity(ideal, output),
        }
    }

    /// Element-wise ratios versus a baseline (the paper's "relative"
    /// presentation in Fig. 8 and Tables 3–4). Infinite ISTs are clamped to
    /// the numerator/denominator convention: `inf/x = inf`, `x/inf = 0`,
    /// `inf/inf = 1`.
    #[must_use]
    pub fn relative_to(&self, baseline: &Scores) -> Scores {
        fn ratio(a: f64, b: f64) -> f64 {
            match (a.is_infinite(), b.is_infinite()) {
                (true, true) => 1.0,
                (true, false) => f64::INFINITY,
                (false, true) => 0.0,
                (false, false) => {
                    if b == 0.0 {
                        f64::INFINITY
                    } else {
                        a / b
                    }
                }
            }
        }
        Scores {
            pst: ratio(self.pst, baseline.pst),
            ist: ratio(self.ist, baseline.ist),
            fidelity: ratio(self.fidelity, baseline.fidelity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn scores_match_individual_metrics() {
        let mut out = Pmf::new(2);
        out.set(bs("00"), 0.6);
        out.set(bs("01"), 0.4);
        let ideal = Pmf::point_mass(bs("00"));
        let s = Scores::of(&out, &ideal, &[bs("00")]);
        assert!((s.pst - 0.6).abs() < 1e-12);
        assert!((s.ist - 1.5).abs() < 1e-12);
        assert!((s.fidelity - 0.6).abs() < 1e-12);
    }

    #[test]
    fn relative_ratios() {
        let a = Scores { pst: 0.6, ist: 3.0, fidelity: 0.9 };
        let b = Scores { pst: 0.2, ist: 1.5, fidelity: 0.45 };
        let r = a.relative_to(&b);
        assert!((r.pst - 3.0).abs() < 1e-12);
        assert!((r.ist - 2.0).abs() < 1e-12);
        assert!((r.fidelity - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_handles_infinities() {
        let inf = Scores { pst: 0.5, ist: f64::INFINITY, fidelity: 0.5 };
        let fin = Scores { pst: 0.5, ist: 2.0, fidelity: 0.5 };
        assert_eq!(inf.relative_to(&fin).ist, f64::INFINITY);
        assert_eq!(fin.relative_to(&inf).ist, 0.0);
        assert_eq!(inf.relative_to(&inf).ist, 1.0);
        let zero = Scores { pst: 0.0, ist: 0.0, fidelity: 0.1 };
        assert_eq!(fin.relative_to(&zero).ist, f64::INFINITY);
    }
}
