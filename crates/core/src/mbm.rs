//! Tensored matrix-based measurement-error mitigation — IBM's MBM baseline
//! of paper Fig. 14 \[19\].
//!
//! Full MBM inverts a `2^n × 2^n` calibration matrix, which the paper notes
//! scales exponentially. The tensored variant (what Qiskit ships as
//! `TensoredMeasFitter`, and the only one viable beyond ~10 qubits)
//! calibrates an independent `2 × 2` assignment matrix per measured qubit
//! and applies the inverse qubit-by-qubit. JigSaw composes with it:
//! mitigate the global-PMF first, then reconstruct with the CPM marginals.

use jigsaw_circuit::Circuit;
use jigsaw_device::Device;
use jigsaw_pmf::{BitString, Pmf};
use jigsaw_sim::{Executor, RunConfig};

/// Per-qubit inverse assignment matrices, index-aligned with the classical
/// bits of the histograms it mitigates.
#[derive(Debug, Clone, PartialEq)]
pub struct TensoredMbm {
    inverse: Vec<[[f64; 2]; 2]>,
}

impl TensoredMbm {
    /// Builds the mitigator from explicit per-clbit error pairs
    /// `(P(1|0), P(0|1))`.
    ///
    /// # Panics
    ///
    /// Panics if any pair sums to ≥ 1 (a singular assignment matrix).
    #[must_use]
    pub fn from_error_pairs(pairs: &[(f64, f64)]) -> Self {
        let inverse = pairs
            .iter()
            .map(|&(e01, e10)| {
                let det = 1.0 - e01 - e10;
                assert!(det > 1e-9, "assignment matrix with e01={e01}, e10={e10} is singular");
                [[(1.0 - e10) / det, -e10 / det], [-e01 / det, (1.0 - e01) / det]]
            })
            .collect();
        Self { inverse }
    }

    /// Calibrates by running the two tensored calibration circuits (all-|0⟩
    /// and all-|1⟩) on the device, exactly as IBM's workflow does: `trials`
    /// per circuit, errors estimated per qubit from the marginals.
    ///
    /// `physical_qubits[k]` is the physical home of classical bit `k` in the
    /// histograms to be mitigated.
    ///
    /// # Panics
    ///
    /// Panics if `physical_qubits` is empty or estimation produces a
    /// singular matrix.
    #[must_use]
    pub fn calibrate(device: &Device, physical_qubits: &[usize], trials: u64, seed: u64) -> Self {
        assert!(!physical_qubits.is_empty(), "nothing to calibrate");
        let executor = Executor::new(device);
        let cfg = RunConfig { gate_noise: false, decoherence: false, ..RunConfig::default() };

        let mut zeros = Circuit::new(device.n_qubits());
        for (k, &q) in physical_qubits.iter().enumerate() {
            zeros.measure(q, k);
        }
        let p0 = executor.run(&zeros, trials, &cfg.with_seed(seed)).to_pmf();

        let mut ones = Circuit::new(device.n_qubits());
        for &q in physical_qubits {
            ones.x(q);
        }
        for (k, &q) in physical_qubits.iter().enumerate() {
            ones.measure(q, k);
        }
        let p1 = executor.run(&ones, trials, &cfg.with_seed(seed ^ 0xFF)).to_pmf();

        let pairs: Vec<(f64, f64)> = (0..physical_qubits.len())
            .map(|k| {
                let m0 = p0.marginal(&[k]);
                let m1 = p1.marginal(&[k]);
                let one: BitString = BitString::from_u64(1, 1);
                let zero: BitString = BitString::from_u64(0, 1);
                (m0.prob(&one), m1.prob(&zero))
            })
            .collect();
        Self::from_error_pairs(&pairs)
    }

    /// Number of classical bits this mitigator covers.
    #[must_use]
    pub fn n_bits(&self) -> usize {
        self.inverse.len()
    }

    /// Applies the tensored inverse to a measured PMF, clipping negative
    /// intensities to zero and renormalising (the standard least-norm
    /// repair).
    ///
    /// # Panics
    ///
    /// Panics if the PMF width differs from the calibrated width.
    #[must_use]
    pub fn mitigate(&self, pmf: &Pmf) -> Pmf {
        assert_eq!(pmf.n_bits(), self.n_bits(), "PMF width differs from calibration");
        // Work in a signed map: intermediate intensities may dip negative.
        let mut values: jigsaw_pmf::hashing::DetHashMap<BitString, f64> =
            pmf.iter().map(|(b, p)| (*b, p)).collect();
        for (q, inv) in self.inverse.iter().enumerate() {
            let mut next: jigsaw_pmf::hashing::DetHashMap<BitString, f64> =
                jigsaw_pmf::hashing::DetHashMap::default();
            for (&b, &v) in &values {
                if v == 0.0 {
                    continue;
                }
                let col = usize::from(b.bit(q));
                // Outcome with bit q = 0 receives inv[0][col]·v, bit 1 gets
                // inv[1][col]·v.
                let mut b0 = b;
                b0.set_bit(q, false);
                let mut b1 = b;
                b1.set_bit(q, true);
                *next.entry(b0).or_insert(0.0) += inv[0][col] * v;
                *next.entry(b1).or_insert(0.0) += inv[1][col] * v;
            }
            values = next;
        }
        let mut out = Pmf::new(pmf.n_bits());
        for (b, v) in values {
            if v > 0.0 {
                out.set(b, v);
            }
        }
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    #[test]
    fn perfect_readout_is_identity() {
        let mbm = TensoredMbm::from_error_pairs(&[(0.0, 0.0), (0.0, 0.0)]);
        let mut p = Pmf::new(2);
        p.set(bs("01"), 0.25);
        p.set(bs("10"), 0.75);
        let out = mbm.mitigate(&p);
        assert!((out.prob(&bs("01")) - 0.25).abs() < 1e-12);
        assert!((out.prob(&bs("10")) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn inverts_a_known_single_qubit_channel() {
        // True state |1⟩; channel reads 0 with probability 0.2.
        let mbm = TensoredMbm::from_error_pairs(&[(0.1, 0.2)]);
        let mut noisy = Pmf::new(1);
        noisy.set(bs("0"), 0.2);
        noisy.set(bs("1"), 0.8);
        let out = mbm.mitigate(&noisy);
        // A = [[0.9, 0.2], [0.1, 0.8]], A·(0,1) = (0.2, 0.8) → recover (0,1).
        assert!(out.prob(&bs("0")) < 1e-9, "p0 = {}", out.prob(&bs("0")));
        assert!((out.prob(&bs("1")) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mitigation_sharpens_a_noisy_ghz() {
        // Two qubits, symmetric 5% errors, true state the GHZ mix.
        let e = 0.05;
        let mbm = TensoredMbm::from_error_pairs(&[(e, e), (e, e)]);
        // Forward-apply the channel to the ideal 50/50 cat distribution.
        let apply = |p00: f64, p11: f64| -> Pmf {
            let mut p = Pmf::new(2);
            let a = [[1.0 - e, e], [e, 1.0 - e]];
            for (true_bits, mass) in [(0b00usize, p00), (0b11, p11)] {
                for read in 0..4usize {
                    let mut prob = mass;
                    for q in 0..2 {
                        prob *= a[(read >> q) & 1][(true_bits >> q) & 1];
                    }
                    p.add(BitString::from_u64(read as u64, 2), prob);
                }
            }
            p
        };
        let noisy = apply(0.5, 0.5);
        assert!(noisy.prob(&bs("01")) > 0.01, "channel injected error mass");
        let out = mbm.mitigate(&noisy);
        assert!(out.prob(&bs("01")) < 1e-9);
        assert!((out.prob(&bs("00")) - 0.5).abs() < 1e-9);
        assert!((out.prob(&bs("11")) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn calibration_recovers_device_rates() {
        let device = Device::toronto();
        let qubits = [0, 1, 2];
        let mbm = TensoredMbm::calibrate(&device, &qubits, 60_000, 5);
        assert_eq!(mbm.n_bits(), 3);
        // Mitigating the forward channel of |111⟩ should sharpen it. Note
        // the calibration and the channel both include 3-way crosstalk.
        let e: Vec<_> = qubits.iter().map(|&q| device.effective_readout(q, 3)).collect();
        let mut noisy = Pmf::new(3);
        for read in 0..8usize {
            let mut prob = 1.0;
            for (q, err) in e.iter().enumerate() {
                let bit = (read >> q) & 1;
                prob *= if bit == 1 { 1.0 - err.p0_given_1 } else { err.p0_given_1 };
            }
            if prob > 0.0 {
                noisy.add(BitString::from_u64(read as u64, 3), prob);
            }
        }
        let before = noisy.prob(&bs("111"));
        let after = mbm.mitigate(&noisy).prob(&bs("111"));
        assert!(after > before + 0.01, "mitigation {before} -> {after}");
        assert!(after > 0.97, "after = {after}");
    }

    #[test]
    fn negative_intensities_are_clipped() {
        let mbm = TensoredMbm::from_error_pairs(&[(0.3, 0.3)]);
        let mut p = Pmf::new(1);
        p.set(bs("0"), 0.9);
        p.set(bs("1"), 0.1); // less than the channel's floor — inversion goes negative
        let out = mbm.mitigate(&p);
        assert!((out.total_mass() - 1.0).abs() < 1e-9);
        for (_, v) in out.iter() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_rejected() {
        let _ = TensoredMbm::from_error_pairs(&[(0.5, 0.5)]);
    }
}
