//! The analytical scalability model of paper §7 (Equation 5 and the §7.3
//! operation counts) — the machinery behind Table 7.
//!
//! JigSaw stores only observed PMF entries, so both memory and time are
//! linear in trials and qubits:
//!
//! ```text
//! Memory = {n + 8(2 + N)}·εT  +  Σ_s L_s(s + 8)·N      L_s = min(2^s, δT)
//! Ops    = 4·ε·S·N·T
//! ```
//!
//! where `n` is program width, `N` the CPM count, `T` trials, `ε`/`δ` the
//! observed-outcome fractions, `s` the subset sizes and `S` their count.
//!
//! [`MeasuredFootprint`] is the model's measured counterpart: it applies
//! the same byte/operation accounting to the PMFs an actual
//! [`JigsawResult`] produced. With the simulator's
//! stabilizer backend, Clifford programs run end-to-end at Table 7 widths,
//! so those rows report observed numbers instead of extrapolations (see
//! the `tab7_measured` binary in `jigsaw-bench`).

use crate::bayes::Marginal;
use crate::jigsaw::JigsawResult;

/// Inputs to the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityInput {
    /// Program width in qubits.
    pub n_qubits: usize,
    /// Observed fraction of the global PMF (`ε`, paper Fig. 13: ≈ 0.05).
    pub epsilon: f64,
    /// Observed fraction of each local PMF (`δ`).
    pub delta: f64,
    /// Trials per mode (the paper's pessimistic "T each" assumption).
    pub trials: u64,
    /// CPM subset sizes (one entry ⇒ JigSaw; several ⇒ JigSaw-M).
    pub subset_sizes: Vec<usize>,
    /// Number of CPMs per subset size (`N`; the paper uses `N = n`).
    pub cpms_per_size: usize,
}

impl ScalabilityInput {
    /// Table 7's JigSaw configuration: subset size 5, `N = n` CPMs.
    #[must_use]
    pub fn paper_jigsaw(n_qubits: usize, epsilon: f64, trials: u64) -> Self {
        Self {
            n_qubits,
            epsilon,
            delta: epsilon,
            trials,
            subset_sizes: vec![5],
            cpms_per_size: n_qubits,
        }
    }

    /// Table 7's JigSaw-M configuration: subset sizes 5, 10, 15, 20.
    #[must_use]
    pub fn paper_jigsaw_m(n_qubits: usize, epsilon: f64, trials: u64) -> Self {
        Self { subset_sizes: vec![5, 10, 15, 20], ..Self::paper_jigsaw(n_qubits, epsilon, trials) }
    }

    /// Observed global-PMF entries `εT`.
    #[must_use]
    pub fn global_entries(&self) -> f64 {
        self.epsilon * self.trials as f64
    }

    /// Local-PMF entries for subset size `s`: `L = min(2^s, δT)`.
    #[must_use]
    pub fn local_entries(&self, s: usize) -> f64 {
        let dense = if s >= 63 { f64::INFINITY } else { (1u64 << s) as f64 };
        dense.min(self.delta * self.trials as f64)
    }

    /// Equation 5: total memory in bytes.
    ///
    /// Global entries cost `n + 8` bytes each (an n-character outcome plus
    /// an 8-byte probability); the `N` intermediate PMFs and the output PMF
    /// cost 8 bytes per entry; each of the `S·N` local PMFs stores
    /// `L_s (s + 8)` bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> f64 {
        let n = self.n_qubits as f64;
        let big_n = self.cpms_per_size as f64;
        let global = (n + 8.0 * (2.0 + big_n)) * self.global_entries();
        let locals: f64 = self
            .subset_sizes
            .iter()
            .map(|&s| self.local_entries(s) * (s as f64 + 8.0) * big_n)
            .sum();
        global + locals
    }

    /// §7.3 operation count: `4·ε·S·N·T` (one coefficient pass plus a
    /// three-operation update per global entry, per CPM, per size).
    #[must_use]
    pub fn operations(&self) -> f64 {
        4.0 * self.global_entries() * (self.subset_sizes.len() * self.cpms_per_size) as f64
    }

    /// Memory in decimal gigabytes (Table 7's unit: the paper's 0.96 GB for
    /// n = 100, ε = 1, T = 1M reproduces exactly in decimal GB).
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_bytes() / 1.0e9
    }

    /// Operations in millions (Table 7's unit).
    #[must_use]
    pub fn operations_millions(&self) -> f64 {
        self.operations() / 1.0e6
    }
}

/// Observed storage and work of a completed JigSaw run, under the same
/// accounting as Equation 5 / §7.3 — but over the entries the run actually
/// produced rather than the `εT` estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredFootprint {
    /// Program width in qubits.
    pub n_qubits: usize,
    /// Entries observed in the global-mode PMF.
    pub global_entries: usize,
    /// Entries in the reconstructed output PMF.
    pub output_entries: usize,
    /// Total entries across all local (CPM) PMFs.
    pub local_entries: usize,
    /// Number of CPMs.
    pub cpm_count: usize,
    /// Weighted local storage `Σ L_s (s + 8)` in bytes.
    local_bytes: f64,
    /// Reconstruction rounds the run performed.
    pub rounds: usize,
}

impl MeasuredFootprint {
    /// Extracts the footprint of a pipeline result.
    #[must_use]
    pub fn of(result: &JigsawResult) -> Self {
        let n_qubits = result.output.n_bits();
        let local_entries = result.marginals.iter().map(|m| m.pmf.support_size()).sum();
        let local_bytes = result
            .marginals
            .iter()
            .map(|m| m.pmf.support_size() as f64 * (m.size() as f64 + 8.0))
            .sum();
        Self {
            n_qubits,
            global_entries: result.global.support_size(),
            output_entries: result.output.support_size(),
            local_entries,
            cpm_count: result.marginals.len(),
            local_bytes,
            rounds: result.rounds,
        }
    }

    /// Measured memory in bytes, mirroring Equation 5's per-entry costs:
    /// `n + 8` bytes per global and per output entry (outcome text +
    /// probability), 8 bytes per intermediate-PMF entry (one intermediate
    /// per CPM, sized by the global support), `s + 8` per local entry.
    /// Unlike the model — which folds the output PMF into the `εT` global
    /// estimate — the output term uses the entry count the run actually
    /// produced.
    #[must_use]
    pub fn memory_bytes(&self) -> f64 {
        let n = self.n_qubits as f64;
        let global = (n + 8.0 * (1.0 + self.cpm_count as f64)) * self.global_entries as f64;
        let output = (n + 8.0) * self.output_entries as f64;
        global + output + self.local_bytes
    }

    /// Measured memory in decimal gigabytes (Table 7's unit).
    #[must_use]
    pub fn memory_gb(&self) -> f64 {
        self.memory_bytes() / 1.0e9
    }

    /// §7.3's operation accounting over observed quantities: four
    /// operations per global entry per CPM per reconstruction round.
    #[must_use]
    pub fn operations(&self) -> f64 {
        4.0 * self.global_entries as f64 * self.cpm_count as f64 * self.rounds.max(1) as f64
    }

    /// Operations in millions (Table 7's unit).
    #[must_use]
    pub fn operations_millions(&self) -> f64 {
        self.operations() / 1.0e6
    }

    /// The analytical-model input this run corresponds to, for side-by-side
    /// model-vs-measured reporting: `ε`/`δ` are back-solved from the
    /// observed entry counts.
    ///
    /// The model carries a single CPM count per subset size, so a
    /// heterogeneous JigSaw-M mix (different CPM counts per layer) is
    /// represented by the rounded per-size average: exact when every layer
    /// has the same CPM count (the sliding-window default), otherwise the
    /// total CPM count — and with it the operation budget — is only
    /// approximately preserved.
    #[must_use]
    pub fn equivalent_model(
        &self,
        trials_per_mode: u64,
        marginals: &[Marginal],
    ) -> ScalabilityInput {
        let t = trials_per_mode.max(1) as f64;
        let mut sizes: Vec<usize> = marginals.iter().map(Marginal::size).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let layers = sizes.len().max(1);
        let per_size = (self.cpm_count + layers / 2) / layers;
        ScalabilityInput {
            n_qubits: self.n_qubits,
            epsilon: (self.global_entries as f64 / t).min(1.0),
            delta: (self.local_entries as f64 / (self.cpm_count.max(1) as f64 * t)).min(1.0),
            trials: trials_per_mode,
            subset_sizes: sizes,
            cpms_per_size: per_size.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_jigsaw_operation_counts() {
        // Table 7, JigSaw OPs column (in millions).
        let cases = [
            (100, 0.05, 32 * 1024, 0.66),
            (100, 0.05, 1024 * 1024, 21.0),
            (100, 1.0, 32 * 1024, 13.1),
            (100, 1.0, 1024 * 1024, 419.0),
            (500, 0.05, 32 * 1024, 3.28),
            (500, 0.05, 1024 * 1024, 105.0),
            (500, 1.0, 32 * 1024, 65.5),
            (500, 1.0, 1024 * 1024, 2097.0),
        ];
        for (n, eps, trials, expect) in cases {
            let m = ScalabilityInput::paper_jigsaw(n, eps, trials);
            let got = m.operations_millions();
            assert!(
                (got - expect).abs() / expect < 0.02,
                "n={n} ε={eps} T={trials}: got {got}, table says {expect}"
            );
        }
    }

    #[test]
    fn table7_jigsaw_m_ops_are_4x() {
        let j = ScalabilityInput::paper_jigsaw(100, 0.05, 32 * 1024);
        let m = ScalabilityInput::paper_jigsaw_m(100, 0.05, 32 * 1024);
        assert!((m.operations() / j.operations() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table7_jigsaw_memory_magnitudes() {
        // Table 7, JigSaw Mem column (GB): 1M trials, ε = 0.05 → 0.05 GB;
        // ε = 1.0 → 0.96 GB.
        let a = ScalabilityInput::paper_jigsaw(100, 0.05, 1024 * 1024);
        assert!((a.memory_gb() - 0.05).abs() < 0.01, "got {}", a.memory_gb());
        let b = ScalabilityInput::paper_jigsaw(100, 1.0, 1024 * 1024);
        assert!((b.memory_gb() - 0.96).abs() < 0.05, "got {}", b.memory_gb());
        let c = ScalabilityInput::paper_jigsaw(500, 1.0, 1024 * 1024);
        assert!((c.memory_gb() - 4.74).abs() < 0.2, "got {}", c.memory_gb());
    }

    #[test]
    fn memory_is_linear_in_trials_and_qubits() {
        let base = ScalabilityInput::paper_jigsaw(100, 0.05, 32 * 1024);
        let more_trials = ScalabilityInput::paper_jigsaw(100, 0.05, 64 * 1024);
        // Local entries may saturate at 2^s, so the global part dominates
        // the ratio; allow a small tolerance.
        let ratio = more_trials.memory_bytes() / base.memory_bytes();
        assert!((ratio - 2.0).abs() < 0.1, "trial scaling ratio {ratio}");

        let wider = ScalabilityInput::paper_jigsaw(200, 0.05, 32 * 1024);
        assert!(wider.memory_bytes() > base.memory_bytes() * 1.8);
        assert!(wider.memory_bytes() < base.memory_bytes() * 4.0);
    }

    #[test]
    fn measured_footprint_tracks_an_actual_run() {
        use jigsaw_circuit::bench;
        use jigsaw_compiler::CompilerOptions;
        use jigsaw_device::Device;

        let device = Device::toronto();
        let config = crate::JigsawConfig {
            compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
            ..crate::JigsawConfig::jigsaw(2000)
        };
        let result = crate::run_jigsaw(bench::ghz(6).circuit(), &device, &config);
        let m = MeasuredFootprint::of(&result);
        assert_eq!(m.n_qubits, 6);
        assert_eq!(m.cpm_count, 6);
        assert_eq!(m.global_entries, result.global.support_size());
        assert!(m.memory_bytes() > 0.0);
        assert!(m.operations() >= 4.0 * m.global_entries as f64 * 6.0);
        // The back-solved model reproduces the observed global fraction.
        let model = m.equivalent_model(1000, &result.marginals);
        assert!((model.global_entries() - m.global_entries as f64).abs() < 1e-9);
        assert_eq!(model.subset_sizes, vec![2]);
    }

    #[test]
    fn local_entries_saturate_at_dense_size() {
        let m = ScalabilityInput::paper_jigsaw(100, 0.05, 1024 * 1024);
        // 2^5 = 32 < δT, so size-5 locals are dense.
        assert_eq!(m.local_entries(5), 32.0);
        // Size 20: δT = 52428.8 < 2^20.
        assert!((m.local_entries(20) - 52428.8).abs() < 0.1);
    }
}
