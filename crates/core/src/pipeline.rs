//! The staged, resumable JigSaw pipeline — Fig. 4 as a typestate API.
//!
//! [`run_jigsaw`](crate::run_jigsaw) drives the whole protocol in one call,
//! which is right for end users but wrong for anything that needs to
//! *observe or steer* the protocol between stages: sweep drivers recompile
//! the identical global circuit per config point, and measurement-steering
//! policies (adaptive subsetting) need the global PMF before subsets exist.
//! [`JigsawPipeline`] decomposes the run into plain-value stages:
//!
//! ```text
//! plan ──▶ Planned ──compile_global()──▶ GlobalCompiled
//!                                              │ run_global()
//!                                              ▼
//!      SubsetsSelected ◀──select_subsets()── GlobalRun
//!             │              /override_subsets(..)
//!             │ run_cpms()
//!             ▼
//!          CpmsRun ──reconstruct()──▶ JigsawResult
//! ```
//!
//! Every stage is `Clone + Debug`, so a caller can fork a mid-pipeline
//! artifact — e.g. one [`GlobalRun`] fanned across many subset-size
//! configs — without re-compiling or re-simulating anything upstream.
//! Stage RNG streams derive from `(experiment seed, stage identity)` alone
//! ([`crate::seed`]), so a forked stage replays **bit-identically** to the
//! monolithic path; `tests/pipeline_equivalence.rs` enforces this across
//! seeds, subset sizes, thread counts and backends.
//!
//! Each stage transition appends a [`StageRecord`] (wall time, trials,
//! backend, support sizes) to the [`StageTimings`] that ends up on
//! [`JigsawResult::timings`].

use std::fmt;
use std::time::{Duration, Instant};

use jigsaw_circuit::Circuit;
use jigsaw_compiler::{compile, Compiled, CompilerOptions, CpmArtifact};
use jigsaw_device::Device;
use jigsaw_pmf::Pmf;
use jigsaw_sim::{BackendKind, Executor, RunConfig};

use crate::bayes::{reconstruct, Marginal, ReconstructionConfig};
use crate::jigsaw::{JigsawConfig, JigsawResult, TrialAllocation};
use crate::seed;
use crate::subsets::{adaptive_layers, generate, SubsetSelection};

/// The pipeline stages, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageName {
    /// Budget split and size filtering.
    Plan,
    /// Noise-aware compilation of the global-mode circuit.
    CompileGlobal,
    /// Global-mode execution.
    RunGlobal,
    /// CPM subset selection and per-CPM budgeting.
    SelectSubsets,
    /// CPM compilation (or layout reuse) and execution.
    RunCpms,
    /// Hierarchical Bayesian reconstruction.
    Reconstruct,
}

impl fmt::Display for StageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Plan => "plan",
            Self::CompileGlobal => "compile-global",
            Self::RunGlobal => "run-global",
            Self::SelectSubsets => "select-subsets",
            Self::RunCpms => "run-cpms",
            Self::Reconstruct => "reconstruct",
        };
        f.write_str(name)
    }
}

/// Telemetry of one completed stage transition.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Which stage this records.
    pub stage: StageName,
    /// Wall-clock time the transition took.
    pub wall: Duration,
    /// Trials executed in this stage (0 where not applicable).
    pub trials: u64,
    /// Work items processed: subset-size layers planned, circuits
    /// compiled, CPMs run, reconstruction rounds, …
    pub items: usize,
    /// Simulation backend the stage resolved to, where one ran.
    pub backend: Option<BackendKind>,
    /// Support size of the PMF the stage produced, where one exists.
    pub support: Option<usize>,
}

/// Per-stage telemetry of a pipeline run, attached to
/// [`JigsawResult::timings`].
///
/// A forked stage carries the records accumulated up to the fork point, so
/// each branch's final result reports its full own history.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    records: Vec<StageRecord>,
}

impl StageTimings {
    /// All records, in execution order.
    #[must_use]
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// The most recent record of `stage`, if that stage has run.
    #[must_use]
    pub fn get(&self, stage: StageName) -> Option<&StageRecord> {
        self.records.iter().rev().find(|r| r.stage == stage)
    }

    /// Total wall-clock across all recorded stages.
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            write!(f, "  {:<15} {:>10.3?}", r.stage.to_string(), r.wall)?;
            if r.trials > 0 {
                write!(f, "  trials {}", r.trials)?;
            }
            if r.items > 0 {
                write!(f, "  items {}", r.items)?;
            }
            if let Some(b) = r.backend {
                write!(f, "  backend {b:?}")?;
            }
            if let Some(s) = r.support {
                write!(f, "  support {s}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  {:<15} {:>10.3?}", "total", self.total_wall())
    }
}

/// The trial-budget split computed by [`JigsawPipeline::plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetPlan {
    /// Trials spent in global mode.
    pub global_trials: u64,
    /// Trials available to the CPM subset mode.
    pub subset_trials: u64,
    /// Subset sizes that fit the program, descending (§4.4.2 order).
    pub sizes: Vec<usize>,
}

/// Why [`JigsawPipeline::try_plan`] refused a job. These are the
/// *request-shaped* failures — conditions a caller (interactive or remote)
/// can produce with well-formed but unusable inputs, which therefore must
/// surface as typed errors rather than panics. The panicking
/// [`JigsawPipeline::plan`] wraps this with the historical messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The program already declares measurements; JigSaw chooses what to
    /// measure, so the caller must pass the measurement-free program.
    Premeasured,
    /// The program does not fit on the device.
    WiderThanDevice {
        /// Program width in qubits.
        program: usize,
        /// Device width in qubits.
        device: usize,
    },
    /// No configured subset size is at least 1 and smaller than the
    /// program, so no CPM can be formed.
    NoFittingSubsetSize {
        /// Program width in qubits.
        program: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Premeasured => {
                f.write_str("pass the measurement-free program; JigSaw chooses what to measure")
            }
            Self::WiderThanDevice { program, device } => {
                write!(f, "{program}-qubit program does not fit a {device}-qubit device")
            }
            Self::NoFittingSubsetSize { program } => {
                write!(f, "no subset size fits a {program}-qubit program")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl BudgetPlan {
    /// The plan a config resolves to for an `n`-qubit program, or `None`
    /// when no configured subset size fits — the fallible path archive
    /// decoding uses to validate a stored plan without panicking.
    fn try_for_config(config: &JigsawConfig, n: usize) -> Option<Self> {
        let mut sizes: Vec<usize> =
            config.subset_sizes.iter().copied().filter(|&s| s >= 1 && s < n).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a)); // descending: §4.4.2 ordering
        sizes.dedup();
        if sizes.is_empty() {
            return None;
        }
        let global_trials =
            ((config.total_trials as f64 * config.global_fraction).round() as u64).max(1);
        let subset_trials = config.total_trials.saturating_sub(global_trials);
        Some(Self { global_trials, subset_trials, sizes })
    }

    fn for_config(config: &JigsawConfig, n: usize) -> Self {
        Self::try_for_config(config, n)
            .unwrap_or_else(|| panic!("no subset size fits a {n}-qubit program"))
    }
}

/// Shared cross-stage state threaded through every pipeline stage.
#[derive(Debug, Clone)]
pub(crate) struct Ctx {
    program: Circuit,
    device: Device,
    config: JigsawConfig,
    plan: BudgetPlan,
    timings: StageTimings,
}

impl Ctx {
    fn record(&mut self, record: StageRecord) {
        // Promote the per-run record into the process-wide registry, so a
        // long-running service aggregates stage walls across every job it
        // has executed (see `crate::telemetry`). Purely observational:
        // nothing feeds back into the run.
        crate::telemetry::global().observe_stage(record.stage, record.wall);
        self.timings.push(record);
    }

    /// The inputs the archive config digest covers (see [`crate::persist`]).
    pub(crate) fn digest_inputs(&self) -> (&Circuit, &Device, &JigsawConfig) {
        (&self.program, &self.device, &self.config)
    }
}

/// One CPM subset-size layer: the subsets of that size and their combined
/// trial budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubsetLayer {
    /// Subset size (qubits per CPM).
    pub size: usize,
    /// The subsets, each a sorted list of logical qubits.
    pub subsets: Vec<Vec<usize>>,
    /// Trials allocated to this layer in total.
    pub budget: u64,
}

/// Entry point of the staged API.
///
/// See the [module docs](self) for the stage graph and guarantees, and
/// [`crate::persist`] for saving stages to disk and resuming them in
/// another process ([`Self::save_stage`] / [`Self::resume_from`]).
///
/// # Examples
///
/// One global compile + run, forked across two subset sizes:
///
/// ```
/// use jigsaw_circuit::bench;
/// use jigsaw_core::{JigsawConfig, JigsawPipeline};
/// use jigsaw_device::Device;
/// # use jigsaw_compiler::CompilerOptions;
///
/// let device = Device::toronto();
/// let bench = bench::ghz(4);
/// let config = JigsawConfig {
/// #     compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
///     ..JigsawConfig::jigsaw(400)
/// };
/// let shared = JigsawPipeline::plan(bench.circuit(), &device, &config)
///     .compile_global()
///     .run_global(); // the expensive prefix, paid once
/// for size in [2, 3] {
///     let result = shared
///         .clone()
///         .with_subset_sizes(vec![size])
///         .select_subsets()
///         .run_cpms()
///         .reconstruct();
///     assert!(result.marginals.iter().all(|m| m.size() == size));
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JigsawPipeline;

impl JigsawPipeline {
    /// Stage 0: validates the program and splits the trial budget.
    ///
    /// # Panics
    ///
    /// Panics on any [`PlanError`] condition — the same conditions as
    /// [`run_jigsaw`](crate::run_jigsaw). Services handling untrusted
    /// requests use [`Self::try_plan`] instead.
    #[must_use]
    pub fn plan(program: &Circuit, device: &Device, config: &JigsawConfig) -> Planned {
        Self::try_plan(program, device, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Stage 0, fallible: validates the program and splits the trial
    /// budget, refusing unusable requests with a typed [`PlanError`].
    ///
    /// This is the entry point for callers whose inputs arrive over a wire
    /// (the job server): a pre-measured program, an oversized program or a
    /// subset-size list that fits nothing are *request* defects, and a
    /// request defect must never be able to panic the process serving it.
    ///
    /// # Errors
    ///
    /// Returns the [`PlanError`] describing the first failed check.
    pub fn try_plan(
        program: &Circuit,
        device: &Device,
        config: &JigsawConfig,
    ) -> Result<Planned, PlanError> {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        if !program.measurements().is_empty() {
            return Err(PlanError::Premeasured);
        }
        if program.n_qubits() > device.n_qubits() {
            return Err(PlanError::WiderThanDevice {
                program: program.n_qubits(),
                device: device.n_qubits(),
            });
        }
        let plan = BudgetPlan::try_for_config(config, program.n_qubits())
            .ok_or(PlanError::NoFittingSubsetSize { program: program.n_qubits() })?;
        let mut ctx = Ctx {
            program: program.clone(),
            device: device.clone(),
            config: config.clone(),
            plan,
            timings: StageTimings::default(),
        };
        let items = ctx.plan.sizes.len();
        ctx.record(StageRecord {
            stage: StageName::Plan,
            wall: t0.elapsed(),
            // Planning executes nothing; summing `trials` across records
            // must equal the trials actually run.
            trials: 0,
            items,
            backend: None,
            support: None,
        });
        Ok(Planned { ctx })
    }
}

/// Stage result of [`JigsawPipeline::plan`]: budget split and subset plan.
#[derive(Debug, Clone)]
pub struct Planned {
    ctx: Ctx,
}

impl Planned {
    /// The budget split this run will use.
    #[must_use]
    pub fn plan(&self) -> &BudgetPlan {
        &self.ctx.plan
    }

    /// The configuration driving the run.
    #[must_use]
    pub fn config(&self) -> &JigsawConfig {
        &self.ctx.config
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn timings(&self) -> &StageTimings {
        &self.ctx.timings
    }

    /// Stage 1: noise-aware compilation of the global-mode circuit (all
    /// qubits measured).
    ///
    /// # Panics
    ///
    /// Panics if the program is wider than the device or no placement
    /// succeeds.
    #[must_use]
    pub fn compile_global(mut self) -> GlobalCompiled {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        let mut global_logical = self.ctx.program.clone();
        global_logical.measure_all();
        let global = compile(&global_logical, &self.ctx.device, &self.ctx.config.compiler);
        self.ctx.record(StageRecord {
            stage: StageName::CompileGlobal,
            wall: t0.elapsed(),
            trials: 0,
            items: 1,
            backend: None,
            support: None,
        });
        GlobalCompiled { ctx: self.ctx, global }
    }
}

/// Stage result of [`Planned::compile_global`]: holds the compiled global
/// artifact. Fork this to reuse one compilation across many run configs.
#[derive(Debug, Clone)]
pub struct GlobalCompiled {
    ctx: Ctx,
    global: Compiled,
}

impl GlobalCompiled {
    /// The compiled global-mode artifact.
    #[must_use]
    pub fn artifact(&self) -> &Compiled {
        &self.global
    }

    /// The configuration driving the run.
    #[must_use]
    pub fn config(&self) -> &JigsawConfig {
        &self.ctx.config
    }

    /// The budget split this run will use.
    #[must_use]
    pub fn plan(&self) -> &BudgetPlan {
        &self.ctx.plan
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn timings(&self) -> &StageTimings {
        &self.ctx.timings
    }

    /// Re-splits the budget with a new global fraction — compilation does
    /// not depend on it, so a fork per fraction shares this artifact (the
    /// `abl_split` sweep).
    #[must_use]
    pub fn with_global_fraction(mut self, fraction: f64) -> Self {
        self.ctx.config.global_fraction = fraction;
        self.ctx.plan = BudgetPlan::for_config(&self.ctx.config, self.ctx.program.n_qubits());
        self
    }

    /// Replaces the executor options for all downstream runs — compilation
    /// does not depend on them, so a fork per noise configuration shares
    /// this artifact (the `abl_channels` sweep).
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.ctx.config.run = run;
        self
    }

    /// Stage 2: executes the global mode and produces the prior PMF.
    #[must_use]
    pub fn run_global(mut self) -> GlobalRun {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        let executor = Executor::new(&self.ctx.device);
        let backend = executor.backend_for(self.global.circuit(), &self.ctx.config.run);
        let counts = executor.run(
            self.global.circuit(),
            self.ctx.plan.global_trials,
            &self.ctx.config.run.with_seed(seed::global_run(self.ctx.config.seed)),
        );
        let global_pmf = counts.to_pmf();
        let trials = self.ctx.plan.global_trials;
        let support = global_pmf.support_size();
        self.ctx.record(StageRecord {
            stage: StageName::RunGlobal,
            wall: t0.elapsed(),
            trials,
            items: 1,
            backend: Some(backend),
            support: Some(support),
        });
        GlobalRun { ctx: self.ctx, global: self.global, global_pmf, backend }
    }
}

/// Stage result of [`GlobalCompiled::run_global`]: the global PMF is now
/// available for inspection and steering. This is the natural fork point
/// for subset-policy sweeps — everything upstream (compile + global run) is
/// the expensive, config-independent part.
#[derive(Debug, Clone)]
pub struct GlobalRun {
    ctx: Ctx,
    global: Compiled,
    global_pmf: Pmf,
    backend: BackendKind,
}

impl GlobalRun {
    /// The global-mode PMF (the reconstruction prior).
    #[must_use]
    pub fn global_pmf(&self) -> &Pmf {
        &self.global_pmf
    }

    /// The compiled global-mode artifact.
    #[must_use]
    pub fn artifact(&self) -> &Compiled {
        &self.global
    }

    /// Simulation backend the global run resolved to.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The configuration driving the run.
    #[must_use]
    pub fn config(&self) -> &JigsawConfig {
        &self.ctx.config
    }

    /// The budget split this run uses.
    #[must_use]
    pub fn plan(&self) -> &BudgetPlan {
        &self.ctx.plan
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn timings(&self) -> &StageTimings {
        &self.ctx.timings
    }

    /// Replaces the subset sizes for the downstream stages — the global
    /// stages do not depend on them, so a fork per size shares this run
    /// (the `abl_subset_size` sweep).
    ///
    /// # Panics
    ///
    /// Panics if no provided size fits the program.
    #[must_use]
    pub fn with_subset_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.ctx.config.subset_sizes = sizes;
        self.ctx.plan = BudgetPlan::for_config(&self.ctx.config, self.ctx.program.n_qubits());
        self
    }

    /// Replaces the subset-selection policy for [`Self::select_subsets`].
    #[must_use]
    pub fn with_selection(mut self, selection: SubsetSelection) -> Self {
        self.ctx.config.selection = selection;
        self
    }

    /// Replaces the per-CPM trial allocation policy.
    #[must_use]
    pub fn with_allocation(mut self, allocation: TrialAllocation) -> Self {
        self.ctx.config.allocation = allocation;
        self
    }

    /// Disables CPM recompilation downstream ("JigSaw w/o recompilation",
    /// Fig. 11): CPMs reuse this run's global mapping.
    #[must_use]
    pub fn without_recompilation(mut self) -> Self {
        self.ctx.config.recompile_cpms = false;
        self
    }

    /// Replaces the reconstruction convergence controls used by
    /// [`CpmsRun::reconstruct`].
    #[must_use]
    pub fn with_reconstruction(mut self, reconstruction: ReconstructionConfig) -> Self {
        self.ctx.config.reconstruction = reconstruction;
        self
    }

    /// Stage 3: chooses CPM subsets per the configured policy and splits
    /// the subset budget among them.
    ///
    /// [`SubsetSelection::Adaptive`] is resolved here, against
    /// [`Self::global_pmf`] — the steering step the one-shot API cannot
    /// express.
    ///
    /// # Panics
    ///
    /// Panics if a random selection requests more distinct subsets than
    /// exist.
    #[must_use]
    pub fn select_subsets(self) -> SubsetsSelected {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        let n = self.ctx.program.n_qubits();
        let config_seed = self.ctx.config.seed;
        let sizes = &self.ctx.plan.sizes;
        let per_size: Vec<Vec<Vec<usize>>> = match self.ctx.config.selection {
            // One entropy/MI model serves every size layer.
            SubsetSelection::Adaptive => {
                adaptive_layers(&self.global_pmf, sizes, self.ctx.config.run.threads)
            }
            other => sizes
                .iter()
                .map(|&size| generate(n, size, other, seed::subset_layer(config_seed, size)))
                .collect(),
        };
        let layers: Vec<(usize, Vec<Vec<usize>>)> =
            sizes.clone().into_iter().zip(per_size).collect();
        self.select_with_layers(layers, t0)
    }

    /// Stage 3, caller-steered: uses the given subsets instead of a
    /// selection policy. Subsets are grouped by size (descending, §4.4.2
    /// order) and budgeted exactly like selected ones.
    ///
    /// # Panics
    ///
    /// Panics if `subsets` is empty, or any subset is empty, has duplicate
    /// or out-of-range qubits, or measures the whole program.
    #[must_use]
    pub fn override_subsets(self, subsets: Vec<Vec<usize>>) -> SubsetsSelected {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        let n = self.ctx.program.n_qubits();
        assert!(!subsets.is_empty(), "override_subsets needs at least one subset");
        let mut by_size: Vec<(usize, Vec<Vec<usize>>)> = Vec::new();
        for mut subset in subsets {
            subset.sort_unstable();
            assert!(!subset.is_empty(), "a CPM must measure at least one qubit");
            assert!(subset.len() < n, "a CPM of all {n} qubits is the global mode");
            assert!(*subset.last().expect("non-empty") < n, "subset {subset:?} out of range");
            assert!(subset.windows(2).all(|w| w[0] != w[1]), "subset {subset:?} has duplicates");
            match by_size.iter_mut().find(|(s, _)| *s == subset.len()) {
                Some((_, list)) => list.push(subset),
                None => by_size.push((subset.len(), vec![subset])),
            }
        }
        by_size.sort_unstable_by_key(|layer| std::cmp::Reverse(layer.0));
        self.select_with_layers(by_size, t0)
    }

    fn select_with_layers(
        mut self,
        lists: Vec<(usize, Vec<Vec<usize>>)>,
        t0: Instant,
    ) -> SubsetsSelected {
        let cpm_count: usize = lists.iter().map(|(_, subs)| subs.len()).sum();
        let subset_trials = self.ctx.plan.subset_trials;

        // Per-layer budgets. Equal split is the paper's default; the
        // coverage-weighted split (Appendix A.2's "fine-tuned" option)
        // gives a size-s CPM budget proportional to its outcome-coverage
        // need.
        let layers: Vec<SubsetLayer> = match self.ctx.config.allocation {
            TrialAllocation::Equal => {
                let per = (subset_trials / cpm_count.max(1) as u64).max(1);
                lists
                    .into_iter()
                    .map(|(size, subsets)| {
                        let budget = per * subsets.len() as u64;
                        SubsetLayer { size, subsets, budget }
                    })
                    .collect()
            }
            TrialAllocation::CoverageWeighted { confidence } => {
                let weights: Vec<f64> = lists
                    .iter()
                    .map(|(s, subs)| {
                        crate::trials::cpm_trials(*s, confidence) as f64 * subs.len() as f64
                    })
                    .collect();
                let total_weight: f64 = weights.iter().sum();
                lists
                    .into_iter()
                    .zip(weights)
                    .map(|((size, subsets), w)| {
                        let budget = ((subset_trials as f64 * w / total_weight) as u64).max(1);
                        SubsetLayer { size, subsets, budget }
                    })
                    .collect()
            }
        };
        self.ctx.record(StageRecord {
            stage: StageName::SelectSubsets,
            wall: t0.elapsed(),
            trials: 0,
            items: cpm_count,
            backend: None,
            support: None,
        });
        SubsetsSelected {
            ctx: self.ctx,
            global: self.global,
            global_pmf: self.global_pmf,
            backend: self.backend,
            layers,
        }
    }
}

/// Stage result of [`GlobalRun::select_subsets`] /
/// [`GlobalRun::override_subsets`]: the CPM work list with per-layer
/// budgets.
#[derive(Debug, Clone)]
pub struct SubsetsSelected {
    ctx: Ctx,
    global: Compiled,
    global_pmf: Pmf,
    backend: BackendKind,
    layers: Vec<SubsetLayer>,
}

impl SubsetsSelected {
    /// The subset layers, descending by size, with their budgets.
    #[must_use]
    pub fn layers(&self) -> &[SubsetLayer] {
        &self.layers
    }

    /// The global-mode PMF (the reconstruction prior).
    #[must_use]
    pub fn global_pmf(&self) -> &Pmf {
        &self.global_pmf
    }

    /// The configuration driving the run.
    #[must_use]
    pub fn config(&self) -> &JigsawConfig {
        &self.ctx.config
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn timings(&self) -> &StageTimings {
        &self.ctx.timings
    }

    /// The CPM execution work list this stage will fan out: one item per
    /// CPM, in work-list order (largest sizes first), each carrying its
    /// per-CPM trial budget and its index-pinned RNG seed.
    ///
    /// External executors — the multi-job stage scheduler merges work lists
    /// from many jobs into one fan-out — compute each item with
    /// [`Self::run_cpm_item`] and hand the marginals back through
    /// [`Self::finish_cpms`]; [`Self::run_cpms`] is exactly that chain, so
    /// any schedule that preserves item order reproduces it bit-for-bit.
    #[must_use]
    pub fn cpm_work(&self) -> Vec<CpmWork> {
        let mut work = Vec::new();
        let mut cpm_index = 0u64;
        for layer in &self.layers {
            let per_cpm = (layer.budget / layer.subsets.len().max(1) as u64).max(1);
            for subset in &layer.subsets {
                work.push(CpmWork {
                    subset: subset.clone(),
                    trials: per_cpm,
                    seed: seed::cpm(self.ctx.config.seed, cpm_index),
                });
                cpm_index += 1;
            }
        }
        work
    }

    /// Compiles (or derives from the global artifact) and executes one CPM
    /// work item. Pure in `(self, item)`: the seed rides on the item, so
    /// the result is independent of when, where or alongside what the item
    /// runs — the property cross-job batching rests on.
    #[must_use]
    pub fn run_cpm_item(&self, item: &CpmWork) -> Marginal {
        Marginal::new(item.subset.clone(), self.run_cpm_item_counts(item).to_pmf())
    }

    /// The raw histogram behind [`Self::run_cpm_item`] — the unit a
    /// distributed sweep ([`crate::dist`]) ships across processes.
    /// `run_cpm_item` is exactly this followed by the deterministic
    /// `Counts::to_pmf` normalisation, so moving histograms over the wire
    /// and normalising at the merge preserves bit-identity.
    #[must_use]
    pub fn run_cpm_item_counts(&self, item: &CpmWork) -> jigsaw_pmf::Counts {
        let config = &self.ctx.config;
        // Inner executor runs and CPM placement searches stay serial: the
        // fan-out already uses the worker team, and nested teams would
        // oversubscribe cores.
        let cpm_compiler = CompilerOptions { threads: 1, ..config.compiler };
        let cpm_run = config.run.with_seed(item.seed).with_threads(1);
        let artifact = if config.recompile_cpms {
            CpmArtifact::recompiled(
                &self.ctx.program,
                &item.subset,
                &self.ctx.device,
                &cpm_compiler,
            )
        } else {
            CpmArtifact::reusing(&self.global, &item.subset)
        };
        Executor::new(&self.ctx.device).run(&artifact.circuit, item.trials, &cpm_run)
    }

    /// The persist config digest of the producing `(program, device,
    /// config)` triple — the content address distributed shard frames are
    /// bound to, mirroring the job protocol's digest binding.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        let (program, device, config) = self.ctx.digest_inputs();
        crate::persist::config_digest(program, device, config)
    }

    /// Stage 4: compiles (or derives from the global artifact) and executes
    /// every CPM, fanning across the worker team. Per-CPM seeds are pinned
    /// to the CPM index and results keep work-list order, so any thread
    /// count reproduces the serial histograms bit-for-bit.
    #[must_use]
    pub fn run_cpms(self) -> CpmsRun {
        let work = self.cpm_work();
        let marginals: Vec<Marginal> =
            jigsaw_pmf::parallel::fan_out(work, self.ctx.config.run.threads, |item| {
                self.run_cpm_item(&item)
            });
        self.finish_cpms(marginals)
    }

    /// Stage 4 completion: installs externally computed CPM marginals —
    /// which must be [`Self::run_cpm_item`] applied to [`Self::cpm_work`]
    /// in work-list order — and records the stage. The semantic stage
    /// record (trials, items) is derived from the work list, so a batched
    /// execution encodes byte-identically to [`Self::run_cpms`].
    ///
    /// # Panics
    ///
    /// Panics if `marginals` does not have one entry per work item.
    #[must_use]
    pub fn finish_cpms(mut self, marginals: Vec<Marginal>) -> CpmsRun {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        let work = self.cpm_work();
        assert_eq!(
            marginals.len(),
            work.len(),
            "finish_cpms needs exactly one marginal per work item"
        );
        let cpm_trials: u64 = work.iter().map(|w| w.trials).sum();
        let trials_used = self.ctx.plan.global_trials + cpm_trials;
        let items = marginals.len();
        self.ctx.record(StageRecord {
            stage: StageName::RunCpms,
            wall: t0.elapsed(),
            trials: cpm_trials,
            items,
            backend: None,
            support: None,
        });
        CpmsRun {
            ctx: self.ctx,
            global: self.global,
            global_pmf: self.global_pmf,
            backend: self.backend,
            layers: self.layers,
            marginals,
            trials_used,
        }
    }
}

/// One CPM execution work item: the subset to measure, its trial budget,
/// and its index-pinned RNG seed (see [`SubsetsSelected::cpm_work`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpmWork {
    /// The qubit subset this CPM measures (sorted).
    pub subset: Vec<usize>,
    /// Trials allocated to this CPM.
    pub trials: u64,
    /// The CPM's derived RNG stream (pinned to its work-list index).
    pub seed: u64,
}

/// Stage result of [`SubsetsSelected::run_cpms`]: every CPM's local PMF.
#[derive(Debug, Clone)]
pub struct CpmsRun {
    ctx: Ctx,
    global: Compiled,
    global_pmf: Pmf,
    backend: BackendKind,
    layers: Vec<SubsetLayer>,
    marginals: Vec<Marginal>,
    trials_used: u64,
}

impl CpmsRun {
    /// All CPM marginals, in work-list order (largest sizes first).
    #[must_use]
    pub fn marginals(&self) -> &[Marginal] {
        &self.marginals
    }

    /// The global-mode PMF (the reconstruction prior).
    #[must_use]
    pub fn global_pmf(&self) -> &Pmf {
        &self.global_pmf
    }

    /// Telemetry accumulated so far.
    #[must_use]
    pub fn timings(&self) -> &StageTimings {
        &self.ctx.timings
    }

    /// Stage 5: hierarchical Bayesian reconstruction, largest subset size
    /// first (§4.4.2), producing the final [`JigsawResult`].
    #[must_use]
    pub fn reconstruct(mut self) -> JigsawResult {
        // analyze:allow(wallclock, stage wall time feeds StageTimings/telemetry only; no Encode impl touches it)
        let t0 = Instant::now();
        // The sharded reconstruction passes run on the same worker-team
        // setting as the rest of the pipeline: RunConfig::threads overrides
        // whatever the reconstruction config carries, so one knob governs
        // every stage.
        let reconstruction =
            self.ctx.config.reconstruction.with_threads(self.ctx.config.run.threads);
        let mut current = self.global_pmf.clone();
        let mut rounds = 0;
        for layer in &self.layers {
            let members: Vec<Marginal> =
                self.marginals.iter().filter(|m| m.size() == layer.size).cloned().collect();
            let r = reconstruct(&current, &members, &reconstruction);
            current = r.pmf;
            rounds += r.rounds;
        }
        let support = current.support_size();
        self.ctx.record(StageRecord {
            stage: StageName::Reconstruct,
            wall: t0.elapsed(),
            trials: 0,
            items: rounds,
            backend: None,
            support: Some(support),
        });
        JigsawResult {
            output: current,
            global: self.global_pmf,
            marginals: self.marginals,
            global_eps: self.global.eps,
            rounds,
            trials_used: self.trials_used,
            backend: self.backend,
            timings: self.ctx.timings,
        }
    }
}

/// A pipeline stage value with its type erased: any mid-pipeline artifact
/// boxed as one unit of schedulable work.
///
/// The typestate API ([`Planned`] → … → [`CpmsRun`]) is what makes solo
/// drivers safe, but a multi-job scheduler needs to hold *many jobs at
/// different stages* in one queue. `StageTask` is that common currency:
/// [`Self::advance`] runs exactly one stage transition, so a scheduler can
/// interleave stage execution across jobs at will — every transition calls
/// the same typestate method a solo driver would, and stage seeds depend
/// only on `(experiment seed, stage identity)`, so *any* interleaving
/// replays bit-identically to [`run_jigsaw`](crate::run_jigsaw).
///
/// The two trial-fan-out stages additionally expose their inner values
/// ([`GlobalCompiled`], [`SubsetsSelected`]) so `jigsaw_core::sched` can
/// merge compatible work across jobs instead of advancing them one by one.
#[derive(Debug, Clone)]
pub enum StageTask {
    /// Planned; next transition is [`Planned::compile_global`].
    Planned(Planned),
    /// Compiled; next transition is [`GlobalCompiled::run_global`]
    /// (batchable across jobs).
    GlobalCompiled(GlobalCompiled),
    /// Global mode ran; next transition is [`GlobalRun::select_subsets`].
    GlobalRun(GlobalRun),
    /// Subsets chosen; next transition is [`SubsetsSelected::run_cpms`]
    /// (batchable across jobs via [`SubsetsSelected::cpm_work`]).
    SubsetsSelected(SubsetsSelected),
    /// CPMs ran; next transition is [`CpmsRun::reconstruct`].
    CpmsRun(CpmsRun),
}

/// What one [`StageTask::advance`] produced: the next stage, or the final
/// result.
#[derive(Debug)]
pub enum StageOutcome {
    /// The job has more stages to run.
    Next(Box<StageTask>),
    /// The job is complete.
    Done(Box<JigsawResult>),
}

impl StageTask {
    /// The stage [`Self::advance`] will execute next.
    #[must_use]
    pub fn next_stage(&self) -> StageName {
        match self {
            Self::Planned(_) => StageName::CompileGlobal,
            Self::GlobalCompiled(_) => StageName::RunGlobal,
            Self::GlobalRun(_) => StageName::SelectSubsets,
            Self::SubsetsSelected(_) => StageName::RunCpms,
            Self::CpmsRun(_) => StageName::Reconstruct,
        }
    }

    /// The persistable face of the held stage, where one exists (the four
    /// upstream stages; a [`CpmsRun`] is past the last checkpoint).
    #[must_use]
    pub fn kind(&self) -> Option<crate::persist::StageKind> {
        match self {
            Self::Planned(_) => Some(crate::persist::StageKind::Planned),
            Self::GlobalCompiled(_) => Some(crate::persist::StageKind::GlobalCompiled),
            Self::GlobalRun(_) => Some(crate::persist::StageKind::GlobalRun),
            Self::SubsetsSelected(_) => Some(crate::persist::StageKind::SubsetsSelected),
            Self::CpmsRun(_) => None,
        }
    }

    /// Runs exactly one stage transition — the same typestate method a
    /// solo driver would call.
    ///
    /// # Panics
    ///
    /// Propagates the advanced stage's panics (compilation failures, a
    /// `Random` selection requesting more subsets than exist, …); a
    /// scheduler executing untrusted jobs wraps this in its fault barrier.
    #[must_use]
    pub fn advance(self) -> StageOutcome {
        match self {
            Self::Planned(stage) => {
                StageOutcome::Next(Box::new(Self::GlobalCompiled(stage.compile_global())))
            }
            Self::GlobalCompiled(stage) => {
                StageOutcome::Next(Box::new(Self::GlobalRun(stage.run_global())))
            }
            Self::GlobalRun(stage) => {
                StageOutcome::Next(Box::new(Self::SubsetsSelected(stage.select_subsets())))
            }
            Self::SubsetsSelected(stage) => {
                StageOutcome::Next(Box::new(Self::CpmsRun(stage.run_cpms())))
            }
            Self::CpmsRun(stage) => StageOutcome::Done(Box::new(stage.reconstruct())),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec: the persistable faces of the pipeline (see `crate::persist` for the
// archive framing and docs/FORMAT.md for the byte-level specification).
//
// Telemetry is deliberately **non-semantic** here: `StageRecord` encodes
// everything *except* its wall-clock duration, which decodes as zero. Wall
// time is the one field that differs between two otherwise identical runs,
// so excluding it keeps archives deterministic — two runs of the same seed
// produce byte-identical checkpoints — exactly as `JigsawResult`'s
// `PartialEq` already ignores `timings` in memory.
// ---------------------------------------------------------------------------

use jigsaw_pmf::codec::{CodecError, Decode, Encode, Reader, Writer};

/// Wire format: one tag byte, in protocol order (`0` plan … `5`
/// reconstruct).
impl Encode for StageName {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::Plan => 0,
            Self::CompileGlobal => 1,
            Self::RunGlobal => 2,
            Self::SelectSubsets => 3,
            Self::RunCpms => 4,
            Self::Reconstruct => 5,
        });
    }
}

impl Decode for StageName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => Self::Plan,
            1 => Self::CompileGlobal,
            2 => Self::RunGlobal,
            3 => Self::SelectSubsets,
            4 => Self::RunCpms,
            5 => Self::Reconstruct,
            tag => return Err(CodecError::InvalidTag { what: "StageName", tag }),
        })
    }
}

/// Wire format: stage tag, trials, items, backend, support — **without the
/// wall-clock duration**, which is telemetry, not protocol state; it
/// decodes as [`Duration::ZERO`].
impl Encode for StageRecord {
    fn encode(&self, w: &mut Writer) {
        self.stage.encode(w);
        w.put_u64(self.trials);
        w.put_usize(self.items);
        self.backend.encode(w);
        self.support.encode(w);
    }
}

impl Decode for StageRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            stage: StageName::decode(r)?,
            wall: Duration::ZERO,
            trials: r.u64()?,
            items: r.usize()?,
            backend: Option::<BackendKind>::decode(r)?,
            support: Option::<usize>::decode(r)?,
        })
    }
}

impl Encode for StageTimings {
    fn encode(&self, w: &mut Writer) {
        self.records.encode(w);
    }
}

impl Decode for StageTimings {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { records: Vec::<StageRecord>::decode(r)? })
    }
}

/// Wire format: global trials, subset trials, the descending size list.
impl Encode for BudgetPlan {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.global_trials);
        w.put_u64(self.subset_trials);
        self.sizes.encode(w);
    }
}

impl Decode for BudgetPlan {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            global_trials: r.u64()?,
            subset_trials: r.u64()?,
            sizes: Vec::<usize>::decode(r)?,
        })
    }
}

/// Wire format: subset size, the subset list, the layer budget.
impl Encode for SubsetLayer {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.size);
        self.subsets.encode(w);
        w.put_u64(self.budget);
    }
}

impl Decode for SubsetLayer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { size: r.usize()?, subsets: Vec::<Vec<usize>>::decode(r)?, budget: r.u64()? })
    }
}

/// Wire format: program, device, config, plan, timings. Decode
/// re-derives the plan from the decoded config and rejects an archive
/// whose stored plan disagrees — the plan is a pure function of
/// `(config, program width)`, so a mismatch means the archive was
/// corrupted or hand-edited.
impl Encode for Ctx {
    fn encode(&self, w: &mut Writer) {
        self.program.encode(w);
        self.device.encode(w);
        self.config.encode(w);
        self.plan.encode(w);
        self.timings.encode(w);
    }
}

impl Decode for Ctx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let invalid = |detail: String| CodecError::InvalidValue { what: "Ctx", detail };
        let program = Circuit::decode(r)?;
        let device = Device::decode(r)?;
        let config = JigsawConfig::decode(r)?;
        let plan = BudgetPlan::decode(r)?;
        let timings = StageTimings::decode(r)?;
        if !program.measurements().is_empty() {
            return Err(invalid("the stored program must be measurement-free".into()));
        }
        if program.n_qubits() > device.n_qubits() {
            return Err(invalid(format!(
                "{}-qubit program on a {}-qubit device",
                program.n_qubits(),
                device.n_qubits()
            )));
        }
        match BudgetPlan::try_for_config(&config, program.n_qubits()) {
            Some(expected) if expected == plan => {}
            _ => return Err(invalid("stored budget plan disagrees with the stored config".into())),
        }
        Ok(Self { program, device, config, plan, timings })
    }
}

/// Semantic cross-stage equality: everything except telemetry.
impl PartialEq for Ctx {
    fn eq(&self, other: &Self) -> bool {
        self.program == other.program
            && self.device == other.device
            && self.config == other.config
            && self.plan == other.plan
    }
}

impl Planned {
    pub(crate) fn ctx(&self) -> &Ctx {
        &self.ctx
    }
}

/// Equality of stage values compares protocol state and deliberately
/// ignores [`StageTimings`] — mirroring [`JigsawResult`]'s `PartialEq` —
/// so a checkpoint-resumed stage compares equal to the in-process stage it
/// was saved from.
impl PartialEq for Planned {
    fn eq(&self, other: &Self) -> bool {
        self.ctx == other.ctx
    }
}

impl Encode for Planned {
    fn encode(&self, w: &mut Writer) {
        self.ctx.encode(w);
    }
}

impl Decode for Planned {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self { ctx: Ctx::decode(r)? })
    }
}

impl GlobalCompiled {
    pub(crate) fn ctx(&self) -> &Ctx {
        &self.ctx
    }
}

/// See [`Planned`]'s `PartialEq`: protocol state only, telemetry ignored.
impl PartialEq for GlobalCompiled {
    fn eq(&self, other: &Self) -> bool {
        self.ctx == other.ctx && self.global == other.global
    }
}

impl Encode for GlobalCompiled {
    fn encode(&self, w: &mut Writer) {
        self.ctx.encode(w);
        self.global.encode(w);
    }
}

impl Decode for GlobalCompiled {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ctx = Ctx::decode(r)?;
        let global = Compiled::decode(r)?;
        check_global_artifact(&ctx, &global)?;
        Ok(Self { ctx, global })
    }
}

impl GlobalRun {
    pub(crate) fn ctx(&self) -> &Ctx {
        &self.ctx
    }
}

/// See [`Planned`]'s `PartialEq`: protocol state only, telemetry ignored.
impl PartialEq for GlobalRun {
    fn eq(&self, other: &Self) -> bool {
        self.ctx == other.ctx
            && self.global == other.global
            && self.global_pmf == other.global_pmf
            && self.backend == other.backend
    }
}

impl Encode for GlobalRun {
    fn encode(&self, w: &mut Writer) {
        self.ctx.encode(w);
        self.global.encode(w);
        self.global_pmf.encode(w);
        self.backend.encode(w);
    }
}

impl Decode for GlobalRun {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ctx = Ctx::decode(r)?;
        let global = Compiled::decode(r)?;
        let global_pmf = Pmf::decode(r)?;
        let backend = BackendKind::decode(r)?;
        check_global_artifact(&ctx, &global)?;
        check_global_pmf(&ctx, &global_pmf)?;
        Ok(Self { ctx, global, global_pmf, backend })
    }
}

impl SubsetsSelected {
    pub(crate) fn ctx(&self) -> &Ctx {
        &self.ctx
    }
}

/// See [`Planned`]'s `PartialEq`: protocol state only, telemetry ignored.
impl PartialEq for SubsetsSelected {
    fn eq(&self, other: &Self) -> bool {
        self.ctx == other.ctx
            && self.global == other.global
            && self.global_pmf == other.global_pmf
            && self.backend == other.backend
            && self.layers == other.layers
    }
}

impl Encode for SubsetsSelected {
    fn encode(&self, w: &mut Writer) {
        self.ctx.encode(w);
        self.global.encode(w);
        self.global_pmf.encode(w);
        self.backend.encode(w);
        self.layers.encode(w);
    }
}

impl Decode for SubsetsSelected {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ctx = Ctx::decode(r)?;
        let global = Compiled::decode(r)?;
        let global_pmf = Pmf::decode(r)?;
        let backend = BackendKind::decode(r)?;
        let layers = Vec::<SubsetLayer>::decode(r)?;
        check_global_artifact(&ctx, &global)?;
        check_global_pmf(&ctx, &global_pmf)?;
        let n = ctx.program.n_qubits();
        for layer in &layers {
            let well_formed = layer.subsets.iter().all(|s| {
                s.len() == layer.size
                    && !s.is_empty()
                    && s.len() < n
                    // analyze:allow(panic-reach, windows(2) yields exactly-2 slices)
                    && s.windows(2).all(|w| w[0] < w[1])
                    && s.last().is_none_or(|&q| q < n)
            });
            if !well_formed {
                return Err(CodecError::InvalidValue {
                    what: "SubsetsSelected",
                    detail: format!("malformed size-{} subset layer", layer.size),
                });
            }
        }
        Ok(Self { ctx, global, global_pmf, backend, layers })
    }
}

/// The compiled global artifact must span the stored device.
fn check_global_artifact(ctx: &Ctx, global: &Compiled) -> Result<(), CodecError> {
    if global.circuit().n_qubits() != ctx.device.n_qubits() {
        return Err(CodecError::InvalidValue {
            what: "GlobalCompiled",
            detail: format!(
                "compiled circuit spans {} qubits, device has {}",
                global.circuit().n_qubits(),
                ctx.device.n_qubits()
            ),
        });
    }
    Ok(())
}

/// The global PMF must be as wide as the program.
fn check_global_pmf(ctx: &Ctx, pmf: &Pmf) -> Result<(), CodecError> {
    if pmf.n_bits() != ctx.program.n_qubits() {
        return Err(CodecError::InvalidValue {
            what: "GlobalRun",
            detail: format!(
                "{}-bit global PMF for a {}-qubit program",
                pmf.n_bits(),
                ctx.program.n_qubits()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_jigsaw;
    use jigsaw_circuit::bench;

    fn quick_config(trials: u64) -> JigsawConfig {
        JigsawConfig {
            compiler: CompilerOptions { max_seeds: 4, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(trials)
        }
    }

    #[test]
    fn staged_run_matches_the_one_shot_wrapper() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let config = quick_config(2000).with_seed(5);
        let one_shot = run_jigsaw(b.circuit(), &device, &config);
        let staged = JigsawPipeline::plan(b.circuit(), &device, &config)
            .compile_global()
            .run_global()
            .select_subsets()
            .run_cpms()
            .reconstruct();
        assert_eq!(one_shot, staged);
    }

    #[test]
    fn forked_global_run_replays_bit_identically() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let config = quick_config(2000).with_seed(9);
        let global_run =
            JigsawPipeline::plan(b.circuit(), &device, &config).compile_global().run_global();
        // Drive a decoy branch first; the original fork must be unaffected.
        let fork = global_run.clone();
        let decoy =
            fork.clone().with_subset_sizes(vec![3]).select_subsets().run_cpms().reconstruct();
        assert!(decoy.marginals.iter().all(|m| m.size() == 3));
        let a = fork.select_subsets().run_cpms().reconstruct();
        let b2 = global_run.select_subsets().run_cpms().reconstruct();
        assert_eq!(a, b2);
        assert_eq!(a, run_jigsaw(b.circuit(), &device, &config));
    }

    #[test]
    fn adaptive_selection_covers_every_qubit() {
        let device = Device::toronto();
        let b = bench::ghz(7);
        let config = JigsawConfig {
            selection: SubsetSelection::Adaptive,
            ..quick_config(2000).with_seed(3)
        };
        let result = run_jigsaw(b.circuit(), &device, &config);
        for q in 0..7 {
            assert!(
                result.marginals.iter().any(|m| m.qubits.contains(&q)),
                "qubit {q} uncovered by adaptive subsets"
            );
        }
        assert!((result.output.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn override_subsets_groups_by_size_and_runs() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let config = quick_config(2000).with_seed(1);
        let result = JigsawPipeline::plan(b.circuit(), &device, &config)
            .compile_global()
            .run_global()
            .override_subsets(vec![vec![0, 1], vec![2, 3, 4], vec![4, 5]])
            .run_cpms()
            .reconstruct();
        let sizes: Vec<usize> = result.marginals.iter().map(Marginal::size).collect();
        assert_eq!(sizes, vec![3, 2, 2], "descending size order");
        assert!((result.output.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timings_cover_every_stage() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let result = run_jigsaw(b.circuit(), &device, &quick_config(1000));
        for stage in [
            StageName::Plan,
            StageName::CompileGlobal,
            StageName::RunGlobal,
            StageName::SelectSubsets,
            StageName::RunCpms,
            StageName::Reconstruct,
        ] {
            assert!(result.timings.get(stage).is_some(), "missing record for {stage}");
        }
        let run_global = result.timings.get(StageName::RunGlobal).expect("recorded");
        assert_eq!(run_global.trials, 500);
        assert_eq!(run_global.backend, Some(BackendKind::Stabilizer));
        assert!(run_global.support.is_some());
        assert!(result.timings.total_wall() > Duration::ZERO);
        // Display renders one line per record plus the total.
        let rendered = result.timings.to_string();
        assert_eq!(rendered.lines().count(), result.timings.records().len() + 1);
    }

    #[test]
    fn try_plan_refuses_request_defects_with_typed_errors() {
        let device = Device::toronto();
        let config = quick_config(1000);

        // Regression for the former `plan` assertion: a pre-measured
        // program is a typed refusal, not a panic.
        let mut measured = bench::ghz(4).circuit().clone();
        measured.measure_all();
        assert_eq!(
            JigsawPipeline::try_plan(&measured, &device, &config).unwrap_err(),
            PlanError::Premeasured
        );

        // Regression for the former `BudgetPlan::for_config` panic.
        let no_fit = JigsawConfig { subset_sizes: vec![9, 0], ..config.clone() };
        assert_eq!(
            JigsawPipeline::try_plan(bench::ghz(4).circuit(), &device, &no_fit).unwrap_err(),
            PlanError::NoFittingSubsetSize { program: 4 }
        );

        // A program wider than the device fails at plan time, before any
        // placement search could panic deep in the compiler.
        let wide = bench::ghz(40);
        assert_eq!(
            JigsawPipeline::try_plan(wide.circuit(), &device, &config).unwrap_err(),
            PlanError::WiderThanDevice { program: 40, device: device.n_qubits() }
        );

        // The happy path matches the panicking entry point.
        let planned = JigsawPipeline::try_plan(bench::ghz(4).circuit(), &device, &config).unwrap();
        assert_eq!(planned, JigsawPipeline::plan(bench::ghz(4).circuit(), &device, &config));
    }

    #[test]
    fn stage_task_chain_matches_run_jigsaw() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let config = quick_config(1600).with_seed(11);
        let mut task = StageTask::Planned(JigsawPipeline::plan(b.circuit(), &device, &config));
        assert_eq!(task.kind(), Some(crate::persist::StageKind::Planned));
        let mut stages = Vec::new();
        let result = loop {
            stages.push(task.next_stage());
            match task.advance() {
                StageOutcome::Next(next) => task = *next,
                StageOutcome::Done(result) => break *result,
            }
        };
        assert_eq!(
            stages,
            vec![
                StageName::CompileGlobal,
                StageName::RunGlobal,
                StageName::SelectSubsets,
                StageName::RunCpms,
                StageName::Reconstruct,
            ]
        );
        assert_eq!(result, run_jigsaw(b.circuit(), &device, &config));
    }

    #[test]
    fn externally_driven_cpms_match_run_cpms() {
        let device = Device::toronto();
        let b = bench::ghz(6);
        let config = quick_config(2000).with_seed(4);
        let selected = JigsawPipeline::plan(b.circuit(), &device, &config)
            .compile_global()
            .run_global()
            .select_subsets();
        // Drive the work list by hand — serially, in order — exactly as an
        // external scheduler merging many jobs would per job.
        let work = selected.cpm_work();
        assert!(!work.is_empty());
        let marginals: Vec<Marginal> =
            work.iter().map(|item| selected.run_cpm_item(item)).collect();
        let external = selected.finish_cpms(marginals).reconstruct();
        assert_eq!(external, run_jigsaw(b.circuit(), &device, &config));
        // And the *encoded* results agree byte for byte (the serving
        // invariant): semantic stage records are derived from the work
        // list, not from who executed it.
        use jigsaw_pmf::codec::encode_to_vec;
        assert_eq!(
            encode_to_vec(&external),
            encode_to_vec(&run_jigsaw(b.circuit(), &device, &config))
        );
    }

    #[test]
    #[should_panic(expected = "one marginal per work item")]
    fn finish_cpms_rejects_a_short_marginal_list() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let selected = JigsawPipeline::plan(b.circuit(), &device, &quick_config(1000))
            .compile_global()
            .run_global()
            .select_subsets();
        let _ = selected.finish_cpms(Vec::new());
    }

    #[test]
    #[should_panic(expected = "all 5 qubits is the global mode")]
    fn override_rejects_whole_program_subsets() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let _ = JigsawPipeline::plan(b.circuit(), &device, &quick_config(1000))
            .compile_global()
            .run_global()
            .override_subsets(vec![vec![0, 1, 2, 3, 4]]);
    }
}
