//! The Bayesian Reconstruction algorithm (paper §4.3, Algorithm 1).
//!
//! The global-PMF is the *prior*; each CPM's local-PMF is higher-fidelity
//! evidence about a qubit subset. One update scales every global outcome by
//! its subset-conditional coefficient times the marginal odds
//! `pr/(1 − pr)`; one reconstruction round adds every marginal's posterior
//! back onto the prior and renormalises; rounds repeat until the Hellinger
//! distance between successive outputs falls below the configured
//! tolerance.
//!
//! Only the prior's observed (non-zero) entries are ever touched, which is
//! what gives JigSaw its linear memory/time complexity (§7).
//!
//! # Sharded execution
//!
//! At large supports (the wide-Clifford workloads produce 10⁵–10⁶ observed
//! outcomes) reconstruction dominates the pipeline, so both support passes
//! of [`bayesian_update`] — group-mass accumulation and posterior scaling —
//! and the per-marginal work of [`reconstruction_round`] run on the rayon
//! worker team. The prior's support is walked in the canonical order of
//! [`Pmf::sorted_entries`] and cut into fixed-size shards
//! ([`jigsaw_pmf::parallel::SHARD_SIZE`]); partial results merge in shard
//! order. Because the shard layout depends only on the support size — never
//! on the worker count — serial and parallel execution produce
//! **bit-identical** output at every thread setting (enforced by
//! `tests/reconstruction_sharding.rs`).

use jigsaw_pmf::hashing::DetHashMap;
use jigsaw_pmf::parallel::{fan_out, map_shards, SHARD_SIZE};
use jigsaw_pmf::{BitString, Pmf};

/// A CPM's evidence: the measured qubit subset and its local PMF.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    /// Program-qubit indices measured by the CPM; `qubits[k]` is local bit `k`.
    pub qubits: Vec<usize>,
    /// Local PMF over the subset (normalised).
    pub pmf: Pmf,
}

impl Marginal {
    /// Packages a subset and its local PMF.
    ///
    /// # Panics
    ///
    /// Panics if the PMF width differs from the subset size.
    #[must_use]
    pub fn new(qubits: Vec<usize>, pmf: Pmf) -> Self {
        assert_eq!(qubits.len(), pmf.n_bits(), "marginal PMF width must match its subset");
        Self { qubits, pmf }
    }

    /// Subset size (the paper's `s`).
    #[must_use]
    pub fn size(&self) -> usize {
        self.qubits.len()
    }
}

/// Convergence and execution controls for [`reconstruct`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionConfig {
    /// Stop when the Hellinger distance between successive outputs falls
    /// below this.
    pub tolerance: f64,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// Worker threads for the sharded support passes: `0` uses all
    /// available cores, `1` runs serially, `n` uses exactly `n` workers.
    /// The output is bit-identical at every setting; the knob only trades
    /// wall-clock for cores. [`crate::run_jigsaw`] overrides this with the
    /// pipeline-wide `RunConfig::threads` knob.
    pub threads: usize,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        Self { tolerance: 1e-4, max_rounds: 32, threads: 0 }
    }
}

impl ReconstructionConfig {
    /// Replaces the worker-thread setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Wire format: the measured subset then its local PMF. Decode re-checks
/// the width agreement [`Marginal::new`] asserts.
impl jigsaw_pmf::codec::Encode for Marginal {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        self.qubits.encode(w);
        self.pmf.encode(w);
    }
}

impl jigsaw_pmf::codec::Decode for Marginal {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        let qubits = Vec::<usize>::decode(r)?;
        let pmf = Pmf::decode(r)?;
        if qubits.len() != pmf.n_bits() {
            return Err(jigsaw_pmf::codec::CodecError::InvalidValue {
                what: "Marginal",
                detail: format!(
                    "{}-qubit subset with a {}-bit local PMF",
                    qubits.len(),
                    pmf.n_bits()
                ),
            });
        }
        Ok(Self { qubits, pmf })
    }
}

/// Wire format: tolerance, round cap, thread setting — declaration order.
impl jigsaw_pmf::codec::Encode for ReconstructionConfig {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        w.put_f64(self.tolerance);
        w.put_usize(self.max_rounds);
        w.put_usize(self.threads);
    }
}

impl jigsaw_pmf::codec::Decode for ReconstructionConfig {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        Ok(Self { tolerance: r.f64()?, max_rounds: r.usize()?, threads: r.usize()? })
    }
}

/// Result of an iterated reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    /// The reconstructed output PMF.
    pub pmf: Pmf,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the Hellinger criterion was met within the round cap.
    pub converged: bool,
}

/// A contiguous slice of canonical `(outcome, weight)` entries — the unit
/// of sharded work.
type EntrySlice<'a> = &'a [(BitString, f64)];

/// One marginal's evidence, reduced to per-projection multipliers.
///
/// For a prior entry with projection key `k`, the unnormalised posterior is
/// `prob · factor[k]` where `factor[k] = odds(pr_k) / gsum_k`; dividing by
/// `total = Σ_k odds(pr_k)` (mathematically the posterior's mass, since the
/// entry coefficients within a group sum to one) normalises it. Keys with
/// zero group mass or zero marginal probability carry no factor.
struct UpdateFactors {
    factor: DetHashMap<BitString, f64>,
    total: f64,
}

/// Group-mass partial for one shard of the prior's canonical entry order:
/// the shard's probability mass keyed by subset projection.
fn shard_group_masses(
    marginal: &Marginal,
    shard: &[(BitString, f64)],
) -> DetHashMap<BitString, f64> {
    let mut g: DetHashMap<BitString, f64> = DetHashMap::default();
    for (b, prob) in shard {
        *g.entry(b.project(&marginal.qubits)).or_insert(0.0) += prob;
    }
    g
}

/// Folds per-shard group masses **in shard order**, keeping the merge (and
/// therefore the floating-point accumulation tree) thread-count-invariant.
fn merge_group_masses<'a, I>(partials: I) -> DetHashMap<BitString, f64>
where
    I: IntoIterator<Item = &'a DetHashMap<BitString, f64>>,
{
    let mut group_mass: DetHashMap<BitString, f64> = DetHashMap::default();
    for partial in partials {
        for (key, mass) in partial {
            *group_mass.entry(*key).or_insert(0.0) += mass;
        }
    }
    group_mass
}

/// Builds the per-projection multipliers from merged group masses.
fn update_factors(group_mass: &DetHashMap<BitString, f64>, marginal: &Marginal) -> UpdateFactors {
    let mut factor: DetHashMap<BitString, f64> = DetHashMap::default();
    let mut total = 0.0;
    for (key, &gsum) in group_mass {
        if gsum <= 0.0 {
            continue;
        }
        // Clamp pr away from 1 so the odds stay finite (a marginal that is
        // literally a point mass would otherwise divide by zero).
        let pr = marginal.pmf.prob(key).min(1.0 - 1e-12);
        if pr <= 0.0 {
            continue;
        }
        let odds = pr / (1.0 - pr);
        factor.insert(*key, odds / gsum);
        total += odds;
    }
    UpdateFactors { factor, total }
}

/// One `Bayesian_Update` (Algorithm 1, lines 1–16): posterior of the prior
/// `p` given one marginal, computed serially. Equivalent to
/// [`bayesian_update_with_threads`] with one worker — and bit-identical to
/// it at any worker count, because the shard layout is fixed.
///
/// For every prior outcome `Bx`, its update coefficient is `p(Bx)`
/// normalised within the group of outcomes sharing `Bx`'s subset
/// projection; the posterior is `coefficient · pr/(1 − pr)` where `pr` is
/// the marginal probability of that projection. The returned PMF is
/// normalised (line 15).
///
/// # Panics
///
/// Panics if the marginal addresses qubits outside the prior's width.
#[must_use]
pub fn bayesian_update(p: &Pmf, marginal: &Marginal) -> Pmf {
    bayesian_update_with_threads(p, marginal, 1)
}

/// [`bayesian_update`] with both support passes sharded across `threads`
/// rayon workers (`0` = all cores, `1` = serial).
#[must_use]
pub fn bayesian_update_with_threads(p: &Pmf, marginal: &Marginal, threads: usize) -> Pmf {
    let entries = p.sorted_entries();
    // Pass 1 — group-mass accumulation, sharded then merged in shard order.
    let partials = map_shards(&entries, threads, |shard| shard_group_masses(marginal, shard));
    let factors = update_factors(&merge_group_masses(&partials), marginal);

    // Pass 2 — posterior scaling, sharded; shards concatenate in order.
    let scaled: Vec<Vec<(BitString, f64)>> = map_shards(&entries, threads, |shard| {
        shard
            .iter()
            .filter_map(|(b, prob)| {
                let f = factors.factor.get(&b.project(&marginal.qubits)).copied().unwrap_or(0.0);
                let w = prob * f;
                (w > 0.0).then(|| (*b, w / factors.total))
            })
            .collect()
    });

    let mut posterior = Pmf::new(p.n_bits());
    for (b, w) in scaled.into_iter().flatten() {
        posterior.set(b, w);
    }
    posterior
}

/// One reconstruction round (Algorithm 1, lines 17–23): every marginal's
/// posterior is computed against the same prior and added onto it; the sum
/// is normalised. Order-independent by construction. Serial; bit-identical
/// to [`reconstruction_round_with_threads`] at any worker count.
#[must_use]
pub fn reconstruction_round(p: &Pmf, marginals: &[Marginal]) -> Pmf {
    reconstruction_round_with_threads(p, marginals, 1)
}

/// [`reconstruction_round`] fanned out across `threads` rayon workers.
#[must_use]
pub fn reconstruction_round_with_threads(p: &Pmf, marginals: &[Marginal], threads: usize) -> Pmf {
    let entries = p.sorted_entries();
    let out = reconstruction_round_over_entries(&entries, marginals, threads);
    pmf_from_canonical_entries(p.n_bits(), out)
}

/// One reconstruction round over the prior's canonical entry list — the
/// allocation-lean core behind [`reconstruction_round_with_threads`] and
/// [`reconstruct`].
///
/// `entries` must be in canonical (ascending outcome) order with positive
/// weights, exactly as [`Pmf::sorted_entries`] returns; the output is the
/// normalised round result **in the same outcome sequence** (the round
/// only reweights, never drops, observed outcomes), so iterated callers
/// never re-sort or rebuild hash maps between rounds.
///
/// The independent per-marginal group passes and the support shards form
/// one flat `marginal × shard` work grid, so a round with few marginals
/// over a huge support and a round with many marginals over a small support
/// both saturate the team without nesting thread pools. The shard layout is
/// fixed by the support size, so the output is bit-identical at every
/// `threads` setting.
#[must_use]
pub fn reconstruction_round_over_entries(
    entries: &[(BitString, f64)],
    marginals: &[Marginal],
    threads: usize,
) -> Vec<(BitString, f64)> {
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "entries must be in canonical ascending-outcome order"
    );
    if marginals.is_empty() {
        return normalize_entry_shards(
            map_shards(entries, threads, <[(BitString, f64)]>::to_vec),
            threads,
        );
    }
    let shards: Vec<EntrySlice<'_>> = entries.chunks(SHARD_SIZE).collect();
    let n_shards = shards.len();
    // Sub-shard supports (the common ≤24-qubit pipelines) run inline: the
    // per-round work is microseconds, so spawning the team for the
    // marginal-indexed grid below would be pure overhead. Thread count
    // never affects the output, so this is a scheduling decision only.
    let threads = if n_shards <= 1 { 1 } else { threads };

    // Phase 1 — every (marginal, shard) group pass is independent work.
    let grid: Vec<(usize, EntrySlice<'_>)> =
        (0..marginals.len()).flat_map(|mi| shards.iter().map(move |shard| (mi, *shard))).collect();
    let partials = fan_out(grid, threads, |(mi, shard)| shard_group_masses(&marginals[mi], shard));

    // Merge each marginal's partials in shard order (grid order groups them
    // contiguously), then reduce to per-projection factors.
    let factors: Vec<UpdateFactors> = marginals
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let merged = merge_group_masses(&partials[mi * n_shards..(mi + 1) * n_shards]);
            update_factors(&merged, m)
        })
        .collect();

    // Phase 2 — posterior scaling and the "+ P" accumulation fused into one
    // sharded pass: every entry gains each marginal's normalised posterior
    // contribution in marginal order.
    let weighted: Vec<Vec<(BitString, f64)>> = map_shards(entries, threads, |shard| {
        shard
            .iter()
            .map(|(b, prob)| {
                let mut v = *prob;
                for (m, f) in marginals.iter().zip(&factors) {
                    if f.total > 0.0 {
                        let fac = f.factor.get(&b.project(&m.qubits)).copied().unwrap_or(0.0);
                        v += prob * fac / f.total;
                    }
                }
                (*b, v)
            })
            .collect()
    });

    normalize_entry_shards(weighted, threads)
}

/// Phase 3 — normalise sharded entry lists: per-shard partial masses fold
/// in shard order (thread-count-invariant), then every shard rescales on
/// the team and the shards concatenate in order.
fn normalize_entry_shards(
    shards: Vec<Vec<(BitString, f64)>>,
    threads: usize,
) -> Vec<(BitString, f64)> {
    let mass: f64 = shards.iter().map(|shard| shard.iter().map(|(_, v)| v).sum::<f64>()).sum();
    if mass <= 0.0 {
        return shards.into_iter().flatten().collect();
    }
    fan_out(shards, threads, |shard: Vec<(BitString, f64)>| {
        shard.into_iter().map(|(b, v)| (b, v / mass)).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Builds a PMF from entries already in canonical order (deterministic
/// insertion sequence, hence deterministic downstream iteration).
fn pmf_from_canonical_entries(n_bits: usize, entries: Vec<(BitString, f64)>) -> Pmf {
    let mut out = Pmf::new(n_bits);
    for (b, v) in entries {
        out.set(b, v);
    }
    out
}

/// Hellinger distance `√(1 − Σ√(pᵢ·qᵢ))` between two *aligned* canonical
/// entry lists (identical outcome sequences), computed shard-wise so the
/// convergence check scales with the round itself.
fn hellinger_aligned(a: &[(BitString, f64)], b: &[(BitString, f64)], threads: usize) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "aligned entry lists must have equal length");
    let pairs: Vec<(EntrySlice<'_>, EntrySlice<'_>)> =
        a.chunks(SHARD_SIZE).zip(b.chunks(SHARD_SIZE)).collect();
    let partials = fan_out(pairs, threads, |(sa, sb)| {
        sa.iter().zip(sb).map(|((_, pa), (_, pb))| (pa * pb).sqrt()).sum::<f64>()
    });
    let bc: f64 = partials.into_iter().sum();
    (1.0 - bc.min(1.0)).max(0.0).sqrt()
}

/// Iterated reconstruction: rounds repeat until the Hellinger distance
/// between successive outputs drops below tolerance (§4.3's termination
/// rule) or the round cap is reached.
///
/// The loop stays in canonical-entries space — the prior is sorted once,
/// each round runs [`reconstruction_round_over_entries`] on
/// [`ReconstructionConfig::threads`] workers, and the output PMF is built
/// once at the end — so per-round serial overhead is just the small factor
/// merges. The result is bit-identical at every thread setting.
#[must_use]
pub fn reconstruct(
    p: &Pmf,
    marginals: &[Marginal],
    config: &ReconstructionConfig,
) -> Reconstruction {
    if marginals.is_empty() {
        return Reconstruction { pmf: p.clone(), rounds: 0, converged: true };
    }
    let mut entries = p.sorted_entries();
    for round in 1..=config.max_rounds {
        let next = reconstruction_round_over_entries(&entries, marginals, config.threads);
        let distance = hellinger_aligned(&entries, &next, config.threads);
        entries = next;
        if distance < config.tolerance {
            return Reconstruction {
                pmf: pmf_from_canonical_entries(p.n_bits(), entries),
                rounds: round,
                converged: true,
            };
        }
    }
    Reconstruction {
        pmf: pmf_from_canonical_entries(p.n_bits(), entries),
        rounds: config.max_rounds,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_pmf::metrics;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    /// The paper's Fig. 6 example: 3-qubit global PMF and the (Q1, Q0)
    /// marginal.
    fn fig6_prior() -> Pmf {
        let mut p = Pmf::new(3);
        for (s, v) in [
            ("000", 0.10),
            ("001", 0.10),
            ("010", 0.15),
            ("011", 0.15),
            ("100", 0.10),
            ("101", 0.05),
            ("110", 0.15),
            ("111", 0.20),
        ] {
            p.set(bs(s), v);
        }
        p
    }

    fn fig6_marginal() -> Marginal {
        let mut m = Pmf::new(2);
        for (s, v) in [("00", 0.1), ("01", 0.1), ("10", 0.2), ("11", 0.6)] {
            m.set(bs(s), v);
        }
        Marginal::new(vec![0, 1], m)
    }

    #[test]
    fn update_reproduces_fig6_posterior_ratios() {
        // Fig. 6 step 3 lists the unnormalised posteriors 0.05, 0.07, 0.13,
        // 0.64, 0.05, 0.04, 0.13, 0.86; ratios survive normalisation.
        let posterior = bayesian_update(&fig6_prior(), &fig6_marginal());
        let expected_unnormalised = [
            ("000", 0.0556),
            ("001", 0.0741),
            ("010", 0.1250),
            ("011", 0.6429),
            ("100", 0.0556),
            ("101", 0.0370),
            ("110", 0.1250),
            ("111", 0.8571),
        ];
        let scale = posterior.prob(&bs("111")) / 0.8571;
        for (s, v) in expected_unnormalised {
            let got = posterior.prob(&bs(s));
            assert!(
                (got - v * scale).abs() < 1e-3,
                "{s}: got {got}, expected {} (scale {scale})",
                v * scale
            );
        }
    }

    #[test]
    fn fig6_correct_answer_probability_rises() {
        // The paper reports the correct answer's (111) probability rising
        // ~2.2× after recursive updates; with a single marginal iterated to
        // convergence the boost should be substantial and 111 the mode.
        let result =
            reconstruct(&fig6_prior(), &[fig6_marginal()], &ReconstructionConfig::default());
        assert!(result.converged);
        let p111 = result.pmf.prob(&bs("111"));
        assert!(p111 > 0.20 * 1.8, "p(111) = {p111}, expected ≥ 1.8× the prior 0.20");
        assert_eq!(result.pmf.mode(), Some(bs("111")));
    }

    #[test]
    fn update_is_conservative_when_marginal_matches_prior() {
        // If the marginal equals the prior's own projection, the posterior
        // must not move the prior much (Bayesian consistency).
        let p = fig6_prior();
        let own = Marginal::new(vec![0, 1], p.marginal(&[0, 1]));
        let out = reconstruction_round(&p, &[own]);
        // Projections agree before and after.
        let before = p.marginal(&[0, 1]);
        let after = out.marginal(&[0, 1]);
        assert!(metrics::tvd(&before, &after) < 0.12);
    }

    #[test]
    fn round_is_order_independent() {
        let p = fig6_prior();
        let m1 = fig6_marginal();
        let mut m2pmf = Pmf::new(2);
        m2pmf.set(bs("00"), 0.3);
        m2pmf.set(bs("11"), 0.7);
        let m2 = Marginal::new(vec![1, 2], m2pmf);
        let ab = reconstruction_round(&p, &[m1.clone(), m2.clone()]);
        let ba = reconstruction_round(&p, &[m2, m1]);
        assert!(metrics::tvd(&ab, &ba) < 1e-12);
    }

    #[test]
    fn update_is_thread_count_invariant() {
        let p = fig6_prior();
        let m = fig6_marginal();
        let serial = bayesian_update_with_threads(&p, &m, 1);
        for threads in [0, 2, 3, 8] {
            assert_eq!(serial, bayesian_update_with_threads(&p, &m, threads));
        }
        assert_eq!(serial, bayesian_update(&p, &m));
    }

    #[test]
    fn round_is_thread_count_invariant() {
        let p = fig6_prior();
        let m1 = fig6_marginal();
        let mut m2pmf = Pmf::new(2);
        m2pmf.set(bs("00"), 0.3);
        m2pmf.set(bs("11"), 0.7);
        let marginals = vec![m1, Marginal::new(vec![1, 2], m2pmf)];
        let serial = reconstruction_round_with_threads(&p, &marginals, 1);
        for threads in [0, 2, 5] {
            assert_eq!(serial, reconstruction_round_with_threads(&p, &marginals, threads));
        }
    }

    #[test]
    fn reconstruct_is_thread_count_invariant() {
        let p = fig6_prior();
        let ms = [fig6_marginal()];
        let serial = reconstruct(&p, &ms, &ReconstructionConfig::default().with_threads(1));
        for threads in [0, 2, 4] {
            let parallel =
                reconstruct(&p, &ms, &ReconstructionConfig::default().with_threads(threads));
            assert_eq!(serial.pmf, parallel.pmf);
            assert_eq!(serial.rounds, parallel.rounds);
        }
    }

    #[test]
    fn round_over_entries_preserves_sequence_and_matches_pmf_round() {
        let p = fig6_prior();
        let ms = [fig6_marginal()];
        let entries = p.sorted_entries();
        let out = reconstruction_round_over_entries(&entries, &ms, 1);
        // Same outcome sequence (rounds only reweight), normalised output.
        let before: Vec<BitString> = entries.iter().map(|(b, _)| *b).collect();
        let after: Vec<BitString> = out.iter().map(|(b, _)| *b).collect();
        assert_eq!(before, after);
        assert!((out.iter().map(|(_, v)| v).sum::<f64>() - 1.0).abs() < 1e-12);
        // The Pmf-level wrapper is exactly this core plus a map build.
        let wrapped = reconstruction_round(&p, &ms);
        for (b, v) in &out {
            assert_eq!(wrapped.prob(b), *v);
        }
    }

    #[test]
    fn zero_marginal_probability_kills_candidates() {
        // Outcomes whose projection the marginal never saw get posterior 0
        // (their prior mass survives only through the "+ P" step).
        let p = fig6_prior();
        let mut m = Pmf::new(2);
        m.set(bs("11"), 1.0);
        let posterior = bayesian_update(&p, &Marginal::new(vec![0, 1], m));
        assert_eq!(posterior.prob(&bs("000")), 0.0);
        assert!(posterior.prob(&bs("011")) > 0.0);
        assert!(posterior.prob(&bs("111")) > 0.0);
    }

    #[test]
    fn reconstruction_output_is_normalised() {
        let r = reconstruct(&fig6_prior(), &[fig6_marginal()], &ReconstructionConfig::default());
        assert!((r.pmf.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_marginals_is_identity() {
        let p = fig6_prior();
        let r = reconstruct(&p, &[], &ReconstructionConfig::default());
        assert_eq!(r.pmf, p);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn support_never_grows() {
        // Reconstruction only reweights observed outcomes (§7.1).
        let p = fig6_prior();
        let r = reconstruct(&p, &[fig6_marginal()], &ReconstructionConfig::default());
        assert!(r.pmf.support_size() <= p.support_size());
    }

    #[test]
    fn point_mass_marginal_stays_finite() {
        let p = fig6_prior();
        let mut m = Pmf::new(1);
        m.set(bs("1"), 1.0);
        let r = reconstruct(&p, &[Marginal::new(vec![2], m)], &ReconstructionConfig::default());
        assert!((r.pmf.total_mass() - 1.0).abs() < 1e-9);
        for (_, prob) in r.pmf.iter() {
            assert!(prob.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn mismatched_marginal_rejected() {
        let _ = Marginal::new(vec![0, 1, 2], Pmf::new(2));
    }
}
