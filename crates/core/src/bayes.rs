//! The Bayesian Reconstruction algorithm (paper §4.3, Algorithm 1).
//!
//! The global-PMF is the *prior*; each CPM's local-PMF is higher-fidelity
//! evidence about a qubit subset. One update scales every global outcome by
//! its subset-conditional coefficient times the marginal odds
//! `pr/(1 − pr)`; one reconstruction round adds every marginal's posterior
//! back onto the prior and renormalises; rounds repeat until the Hellinger
//! distance between successive outputs stops changing.
//!
//! Only the prior's observed (non-zero) entries are ever touched, which is
//! what gives JigSaw its linear memory/time complexity (§7).

use jigsaw_pmf::hashing::DetHashMap;
use jigsaw_pmf::{metrics, BitString, Pmf};

/// A CPM's evidence: the measured qubit subset and its local PMF.
#[derive(Debug, Clone, PartialEq)]
pub struct Marginal {
    /// Program-qubit indices measured by the CPM; `qubits[k]` is local bit `k`.
    pub qubits: Vec<usize>,
    /// Local PMF over the subset (normalised).
    pub pmf: Pmf,
}

impl Marginal {
    /// Packages a subset and its local PMF.
    ///
    /// # Panics
    ///
    /// Panics if the PMF width differs from the subset size.
    #[must_use]
    pub fn new(qubits: Vec<usize>, pmf: Pmf) -> Self {
        assert_eq!(qubits.len(), pmf.n_bits(), "marginal PMF width must match its subset");
        Self { qubits, pmf }
    }

    /// Subset size (the paper's `s`).
    #[must_use]
    pub fn size(&self) -> usize {
        self.qubits.len()
    }
}

/// Convergence controls for [`reconstruct`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionConfig {
    /// Stop when the Hellinger distance between successive outputs falls
    /// below this.
    pub tolerance: f64,
    /// Hard cap on rounds.
    pub max_rounds: usize,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        Self { tolerance: 1e-4, max_rounds: 32 }
    }
}

/// Result of an iterated reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    /// The reconstructed output PMF.
    pub pmf: Pmf,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the Hellinger criterion was met within the round cap.
    pub converged: bool,
}

/// One `Bayesian_Update` (Algorithm 1, lines 1–16): posterior of the prior
/// `p` given one marginal.
///
/// For every prior outcome `Bx`, its update coefficient is `p(Bx)`
/// normalised within the group of outcomes sharing `Bx`'s subset
/// projection; the posterior is `coefficient · pr/(1 − pr)` where `pr` is
/// the marginal probability of that projection. The returned PMF is
/// normalised (line 15).
///
/// # Panics
///
/// Panics if the marginal addresses qubits outside the prior's width.
#[must_use]
pub fn bayesian_update(p: &Pmf, marginal: &Marginal) -> Pmf {
    // Group the prior's mass by subset projection (Algorithm 1's candidate
    // search, computed in one pass instead of per marginal entry).
    let mut group_mass: DetHashMap<BitString, f64> = DetHashMap::default();
    for (b, prob) in p.iter() {
        *group_mass.entry(b.project(&marginal.qubits)).or_insert(0.0) += prob;
    }

    let mut posterior = Pmf::new(p.n_bits());
    for (b, prob) in p.iter() {
        let key = b.project(&marginal.qubits);
        let gsum = group_mass[&key];
        if gsum <= 0.0 {
            continue;
        }
        // Clamp pr away from 1 so the odds stay finite (a marginal that is
        // literally a point mass would otherwise divide by zero).
        let pr = marginal.pmf.prob(&key).min(1.0 - 1e-12);
        if pr <= 0.0 {
            continue;
        }
        let coefficient = prob / gsum;
        posterior.set(*b, coefficient * pr / (1.0 - pr));
    }
    posterior.normalize();
    posterior
}

/// One reconstruction round (Algorithm 1, lines 17–23): every marginal's
/// posterior is computed against the same prior and added onto it; the sum
/// is normalised. Order-independent by construction.
#[must_use]
pub fn reconstruction_round(p: &Pmf, marginals: &[Marginal]) -> Pmf {
    let mut out = p.clone();
    for m in marginals {
        out.add_scaled(&bayesian_update(p, m), 1.0);
    }
    out.normalize();
    out
}

/// Iterated reconstruction: rounds repeat until the Hellinger distance
/// between successive outputs drops below tolerance (§4.3's termination
/// rule) or the round cap is reached.
#[must_use]
pub fn reconstruct(
    p: &Pmf,
    marginals: &[Marginal],
    config: &ReconstructionConfig,
) -> Reconstruction {
    let mut current = p.clone();
    if marginals.is_empty() {
        return Reconstruction { pmf: current, rounds: 0, converged: true };
    }
    for round in 1..=config.max_rounds {
        let next = reconstruction_round(&current, marginals);
        let distance = metrics::hellinger(&next, &current);
        current = next;
        if distance < config.tolerance {
            return Reconstruction { pmf: current, rounds: round, converged: true };
        }
    }
    Reconstruction { pmf: current, rounds: config.max_rounds, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        s.parse().unwrap()
    }

    /// The paper's Fig. 6 example: 3-qubit global PMF and the (Q1, Q0)
    /// marginal.
    fn fig6_prior() -> Pmf {
        let mut p = Pmf::new(3);
        for (s, v) in [
            ("000", 0.10),
            ("001", 0.10),
            ("010", 0.15),
            ("011", 0.15),
            ("100", 0.10),
            ("101", 0.05),
            ("110", 0.15),
            ("111", 0.20),
        ] {
            p.set(bs(s), v);
        }
        p
    }

    fn fig6_marginal() -> Marginal {
        let mut m = Pmf::new(2);
        for (s, v) in [("00", 0.1), ("01", 0.1), ("10", 0.2), ("11", 0.6)] {
            m.set(bs(s), v);
        }
        Marginal::new(vec![0, 1], m)
    }

    #[test]
    fn update_reproduces_fig6_posterior_ratios() {
        // Fig. 6 step 3 lists the unnormalised posteriors 0.05, 0.07, 0.13,
        // 0.64, 0.05, 0.04, 0.13, 0.86; ratios survive normalisation.
        let posterior = bayesian_update(&fig6_prior(), &fig6_marginal());
        let expected_unnormalised = [
            ("000", 0.0556),
            ("001", 0.0741),
            ("010", 0.1250),
            ("011", 0.6429),
            ("100", 0.0556),
            ("101", 0.0370),
            ("110", 0.1250),
            ("111", 0.8571),
        ];
        let scale = posterior.prob(&bs("111")) / 0.8571;
        for (s, v) in expected_unnormalised {
            let got = posterior.prob(&bs(s));
            assert!(
                (got - v * scale).abs() < 1e-3,
                "{s}: got {got}, expected {} (scale {scale})",
                v * scale
            );
        }
    }

    #[test]
    fn fig6_correct_answer_probability_rises() {
        // The paper reports the correct answer's (111) probability rising
        // ~2.2× after recursive updates; with a single marginal iterated to
        // convergence the boost should be substantial and 111 the mode.
        let result =
            reconstruct(&fig6_prior(), &[fig6_marginal()], &ReconstructionConfig::default());
        assert!(result.converged);
        let p111 = result.pmf.prob(&bs("111"));
        assert!(p111 > 0.20 * 1.8, "p(111) = {p111}, expected ≥ 1.8× the prior 0.20");
        assert_eq!(result.pmf.mode(), Some(bs("111")));
    }

    #[test]
    fn update_is_conservative_when_marginal_matches_prior() {
        // If the marginal equals the prior's own projection, the posterior
        // must not move the prior much (Bayesian consistency).
        let p = fig6_prior();
        let own = Marginal::new(vec![0, 1], p.marginal(&[0, 1]));
        let out = reconstruction_round(&p, &[own]);
        // Projections agree before and after.
        let before = p.marginal(&[0, 1]);
        let after = out.marginal(&[0, 1]);
        assert!(metrics::tvd(&before, &after) < 0.12);
    }

    #[test]
    fn round_is_order_independent() {
        let p = fig6_prior();
        let m1 = fig6_marginal();
        let mut m2pmf = Pmf::new(2);
        m2pmf.set(bs("00"), 0.3);
        m2pmf.set(bs("11"), 0.7);
        let m2 = Marginal::new(vec![1, 2], m2pmf);
        let ab = reconstruction_round(&p, &[m1.clone(), m2.clone()]);
        let ba = reconstruction_round(&p, &[m2, m1]);
        assert!(metrics::tvd(&ab, &ba) < 1e-12);
    }

    #[test]
    fn zero_marginal_probability_kills_candidates() {
        // Outcomes whose projection the marginal never saw get posterior 0
        // (their prior mass survives only through the "+ P" step).
        let p = fig6_prior();
        let mut m = Pmf::new(2);
        m.set(bs("11"), 1.0);
        let posterior = bayesian_update(&p, &Marginal::new(vec![0, 1], m));
        assert_eq!(posterior.prob(&bs("000")), 0.0);
        assert!(posterior.prob(&bs("011")) > 0.0);
        assert!(posterior.prob(&bs("111")) > 0.0);
    }

    #[test]
    fn reconstruction_output_is_normalised() {
        let r = reconstruct(&fig6_prior(), &[fig6_marginal()], &ReconstructionConfig::default());
        assert!((r.pmf.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_marginals_is_identity() {
        let p = fig6_prior();
        let r = reconstruct(&p, &[], &ReconstructionConfig::default());
        assert_eq!(r.pmf, p);
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn support_never_grows() {
        // Reconstruction only reweights observed outcomes (§7.1).
        let p = fig6_prior();
        let r = reconstruct(&p, &[fig6_marginal()], &ReconstructionConfig::default());
        assert!(r.pmf.support_size() <= p.support_size());
    }

    #[test]
    fn point_mass_marginal_stays_finite() {
        let p = fig6_prior();
        let mut m = Pmf::new(1);
        m.set(bs("1"), 1.0);
        let r = reconstruct(&p, &[Marginal::new(vec![2], m)], &ReconstructionConfig::default());
        assert!((r.pmf.total_mass() - 1.0).abs() < 1e-9);
        for (_, prob) in r.pmf.iter() {
            assert!(prob.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn mismatched_marginal_rejected() {
        let _ = Marginal::new(vec![0, 1, 2], Pmf::new(2));
    }
}
