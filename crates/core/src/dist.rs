//! Distributed CPM sweeps: scatter a checkpointed [`SubsetsSelected`]
//! stage's work list across workers and merge the partial results back
//! **bit-identically** to a solo [`run_jigsaw`](crate::run_jigsaw).
//!
//! The CPM stage dominates JigSaw's cost — thousands of small circuits
//! fanned off one global run — and it is embarrassingly parallel: every
//! [`CpmWork`] item carries its own index-pinned seed, so *where* it runs
//! cannot change *what* it produces. This module turns that property into
//! a scatter/merge protocol:
//!
//! 1. [`plan_shards`] partitions the canonical CPM order into contiguous
//!    [`Shard`] ranges.
//! 2. Each shard is executed somewhere — in-process via [`execute_shard`],
//!    or on a `jigsaw-server` worker via the protocol-v3 shard frames —
//!    yielding a [`ShardPartial`] of raw per-CPM histograms.
//! 3. [`merge_partials`] reassembles the partials **in shard-index
//!    order**, dedupes by shard index (duplicate deliveries are
//!    harmless), validates coverage against the stage's own work list,
//!    and finishes the pipeline. Normalisation (`Counts::to_pmf`) is
//!    deterministic, so the merged [`JigsawResult`] is byte-identical to
//!    the in-process run regardless of worker count, shard size,
//!    completion order, or which worker ran which shard.
//!
//! [`run_sharded`] is the fault-tolerant driver over any set of
//! [`ShardRunner`]s: a failed runner is retired and its shard reassigned
//! to a survivor (same seeds → same bytes); a shard that exhausts
//! [`DistConfig::max_attempts`] or outlives [`DistConfig::watchdog`]
//! surfaces a typed [`DistError`] instead of hanging.
//!
//! `tests/dist_determinism.rs` proptests the bit-identity invariant
//! across worker counts × shard sizes × delivery orders;
//! `tests/dist_faults.rs` injects worker deaths, duplicate and dropped
//! results.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use jigsaw_pmf::codec::{CodecError, Decode, Encode, Reader, Writer};
use jigsaw_pmf::{CpmHistogram, ShardPartial};

use crate::bayes::Marginal;
use crate::jigsaw::JigsawResult;
use crate::lockcheck::{Condvar, Mutex};
use crate::pipeline::{CpmWork, SubsetsSelected};
use crate::sched::Priority;
use crate::telemetry;

/// How long a blocked driver thread sleeps between re-checks of the
/// shared sweep state. Watchdog time is accumulated in units of this
/// poll, so the codec-module ban on wall-clock reads holds here too.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Driver-side knobs for a distributed sweep.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// CPM work items per shard (≥ 1; the last shard may be shorter).
    pub shard_size: usize,
    /// Total executions allowed per shard before the sweep fails with
    /// [`DistError::ShardFailed`] (≥ 1).
    pub max_attempts: usize,
    /// Upper bound on the driver's wait for outstanding results; on
    /// expiry the sweep fails with [`DistError::Timeout`] instead of
    /// hanging on a silent worker.
    pub watchdog: Duration,
    /// Priority lane shard requests ride on remote workers' schedulers.
    pub priority: Priority,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            shard_size: 8,
            max_attempts: 3,
            watchdog: Duration::from_secs(120),
            priority: Priority::Sweep,
        }
    }
}

impl DistConfig {
    /// Sets the shard size.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size;
        self
    }

    /// Sets the per-shard attempt budget.
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the driver watchdog.
    #[must_use]
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the remote priority lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A contiguous range of the canonical CPM work list, the unit of
/// distribution. Seeds are *not* carried: they are index-pinned in the
/// work list itself ([`SubsetsSelected::cpm_work`]), so any worker
/// re-derives identical streams from the range alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Position in the driver's shard plan; the merge and dedup key.
    pub index: u64,
    /// First work-list index covered (inclusive).
    pub lo: u64,
    /// One past the last work-list index covered (exclusive).
    pub hi: u64,
}

impl Shard {
    /// Number of CPM work items in the shard.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the range is empty (never true for planned shards).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// Wire format: `index`, `lo`, `hi`, each `u64`.
impl Encode for Shard {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.index);
        w.put_u64(self.lo);
        w.put_u64(self.hi);
    }
}

impl Decode for Shard {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let index = r.u64()?;
        let lo = r.u64()?;
        let hi = r.u64()?;
        if lo >= hi {
            return Err(CodecError::InvalidValue {
                what: "Shard",
                detail: format!("empty or inverted range {lo}..{hi}"),
            });
        }
        Ok(Self { index, lo, hi })
    }
}

/// Partitions `items` work-list entries into contiguous shards of
/// `shard_size` (the last may be shorter). Empty work lists plan zero
/// shards.
#[must_use]
pub fn plan_shards(items: usize, shard_size: usize) -> Vec<Shard> {
    let size = shard_size.max(1) as u64;
    let items = items as u64;
    (0..items.div_ceil(size))
        .map(|index| Shard { index, lo: index * size, hi: ((index + 1) * size).min(items) })
        .collect()
}

/// A shard execution request as shipped to a worker: the full
/// [`SubsetsSelected`] stage (workers receive artifacts, never
/// recompile), the range to run, and the scheduler lane to run it on.
#[derive(Debug, Clone)]
pub struct ShardRequest {
    /// The checkpointed stage the shard executes against.
    pub stage: SubsetsSelected,
    /// The work-list range to execute.
    pub shard: Shard,
    /// The worker-side scheduler lane.
    pub priority: Priority,
}

impl ShardRequest {
    /// The persist config digest of the producing triple; shard frames
    /// bind payloads to it exactly like job frames do.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.stage.config_digest()
    }
}

/// Wire format: the [`Shard`], the priority code byte, then the persist
/// encoding of the [`SubsetsSelected`] stage.
impl Encode for ShardRequest {
    fn encode(&self, w: &mut Writer) {
        self.shard.encode(w);
        w.put_u8(self.priority.code());
        self.stage.encode(w);
    }
}

impl Decode for ShardRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let shard = Shard::decode(r)?;
        let code = r.u8()?;
        let priority = Priority::from_code(code)
            .ok_or(CodecError::InvalidTag { what: "ShardRequest priority", tag: code })?;
        let stage = SubsetsSelected::decode(r)?;
        let items = cpm_count(&stage) as u64;
        if shard.hi > items {
            return Err(CodecError::InvalidValue {
                what: "ShardRequest",
                detail: format!(
                    "shard range {}..{} exceeds the {items}-item work list",
                    shard.lo, shard.hi
                ),
            });
        }
        Ok(Self { stage, shard, priority })
    }
}

/// Number of CPM work items the stage will fan out, without
/// materialising the work list.
fn cpm_count(stage: &SubsetsSelected) -> usize {
    stage.layers().iter().map(|layer| layer.subsets.len()).sum()
}

/// Executes one shard against `stage`, in-process: runs
/// [`SubsetsSelected::run_cpm_item_counts`] over the range and records
/// the probe-counted compile cost (zero for `without_recompilation`
/// sweeps — the bench and tests assert workers never recompile). The
/// probe is process-global, so the `compiles` field is exact only when
/// the process is not compiling concurrently.
///
/// # Panics
///
/// Panics if the shard range is empty or exceeds the stage's work list;
/// decoded requests are pre-validated, so this indicates driver misuse.
#[must_use]
pub fn execute_shard(stage: &SubsetsSelected, shard: &Shard) -> ShardPartial {
    let work = stage.cpm_work();
    assert!(
        !shard.is_empty() && shard.hi as usize <= work.len(),
        "shard range {}..{} invalid for a {}-item work list",
        shard.lo,
        shard.hi,
        work.len()
    );
    let before = jigsaw_compiler::probe::compile_count();
    let histograms: Vec<CpmHistogram> = work[shard.lo as usize..shard.hi as usize]
        .iter()
        .enumerate()
        .map(|(offset, item)| CpmHistogram {
            cpm_index: shard.lo + offset as u64,
            qubits: item.subset.clone(),
            counts: stage.run_cpm_item_counts(item),
        })
        .collect();
    let compiles = jigsaw_compiler::probe::compile_count().saturating_sub(before);
    ShardPartial { shard_index: shard.index, lo: shard.lo, hi: shard.hi, compiles, histograms }
}

/// A distributed sweep failure. Every variant is terminal and typed —
/// the driver never hangs and never merges a partial result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The driver was handed an empty runner set.
    NoWorkers,
    /// A shard ran out of attempts (or out of surviving workers).
    ShardFailed {
        /// The failing shard's plan index.
        shard_index: u64,
        /// Executions attempted before giving up.
        attempts: usize,
        /// The last runner's error message.
        last_error: String,
    },
    /// The watchdog expired with results still outstanding.
    Timeout {
        /// How long the driver waited.
        waited: Duration,
        /// Shards still unmerged at expiry.
        unfinished: usize,
    },
    /// The collected partials do not reassemble into the stage's work
    /// list (gap, overlap, or a histogram contradicting the work list).
    Merge {
        /// What failed to line up.
        detail: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoWorkers => write!(f, "distributed sweep needs at least one worker"),
            Self::ShardFailed { shard_index, attempts, last_error } => {
                write!(f, "shard {shard_index} failed after {attempts} attempt(s): {last_error}")
            }
            Self::Timeout { waited, unfinished } => write!(
                f,
                "watchdog expired after {waited:?} with {unfinished} shard(s) outstanding"
            ),
            Self::Merge { detail } => write!(f, "partials do not merge: {detail}"),
        }
    }
}

impl Error for DistError {}

/// Merges shard partials back into the pipeline: sorts by shard index,
/// drops duplicate deliveries (first wins — identical seeds make every
/// delivery of a shard byte-identical anyway), validates that the
/// partials tile exactly `0..work.len()` and agree with the stage's own
/// work list, then normalises and finishes the run. The marginal order
/// is the canonical work-list order, so the result is bit-identical to
/// [`SubsetsSelected::run_cpms`] + `reconstruct`.
///
/// # Errors
///
/// [`DistError::Merge`] when coverage has a gap or overlap, or a
/// histogram's subset/width/trial count contradicts the work list.
pub fn merge_partials(
    stage: SubsetsSelected,
    partials: Vec<ShardPartial>,
) -> Result<JigsawResult, DistError> {
    let work = stage.cpm_work();
    let mut partials = partials;
    partials.sort_by_key(|p| p.shard_index);
    partials.dedup_by_key(|p| p.shard_index);
    let merge_err = |detail: String| DistError::Merge { detail };
    let mut next = 0u64;
    let mut marginals: Vec<Marginal> = Vec::with_capacity(work.len());
    for partial in &partials {
        if partial.lo != next {
            return Err(merge_err(format!(
                "shard {} covers {}..{} but the next unmerged CPM index is {next}",
                partial.shard_index, partial.lo, partial.hi
            )));
        }
        for histogram in &partial.histograms {
            let index = histogram.cpm_index;
            let item: &CpmWork = work.get(index as usize).ok_or_else(|| {
                merge_err(format!("CPM index {index} exceeds the {}-item work list", work.len()))
            })?;
            if histogram.qubits != item.subset {
                return Err(merge_err(format!(
                    "CPM {index} measured subset {:?} but the work list says {:?}",
                    histogram.qubits, item.subset
                )));
            }
            if histogram.counts.total() != item.trials {
                return Err(merge_err(format!(
                    "CPM {index} recorded {} trials but the work list allocates {}",
                    histogram.counts.total(),
                    item.trials
                )));
            }
            marginals.push(Marginal::new(item.subset.clone(), histogram.counts.to_pmf()));
        }
        next = partial.hi;
    }
    if next != work.len() as u64 {
        return Err(merge_err(format!(
            "partials cover only {next} of {} CPM work items",
            work.len()
        )));
    }
    Ok(stage.finish_cpms(marginals).reconstruct())
}

/// Anything that can execute a shard somewhere: in-process
/// ([`LocalRunner`]), over TCP against a `jigsaw-server` worker
/// (`jigsaw_server::dist::RemoteRunner`), or a test fake injecting
/// faults.
pub trait ShardRunner: Send {
    /// Executes one shard of `stage`'s work list and returns its partial.
    ///
    /// # Errors
    ///
    /// A transport or compute failure, as a human-readable message. The
    /// driver retires an erring runner and reassigns the shard to a
    /// survivor — implementations need not retry internally.
    fn run_shard(
        &mut self,
        stage: &SubsetsSelected,
        shard: &Shard,
        priority: Priority,
    ) -> Result<ShardPartial, String>;
}

/// The trivial in-process runner; `N` of these reproduce the distributed
/// merge path without any sockets.
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalRunner;

impl ShardRunner for LocalRunner {
    fn run_shard(
        &mut self,
        stage: &SubsetsSelected,
        shard: &Shard,
        _priority: Priority,
    ) -> Result<ShardPartial, String> {
        Ok(execute_shard(stage, shard))
    }
}

/// Shared driver state: the work queue plus completion bookkeeping.
struct SweepState {
    /// Shards awaiting a runner, with their attempt counts so far.
    pending: VecDeque<(Shard, usize)>,
    /// Collected partials, in completion order (merge re-sorts).
    results: Vec<ShardPartial>,
    /// First terminal failure; set once, ends the sweep.
    failure: Option<DistError>,
    /// Runners not yet retired by an error.
    active: usize,
    /// Shards currently executing on some runner.
    in_flight: usize,
}

/// The driver's shared queue. Lock rank 5 (`dist.queue`): acquired
/// before any scheduler or cell lock a [`ShardRunner`] might take.
struct Sweep {
    queue: Mutex<SweepState>,
    changed: Condvar,
}

/// Scatters `stage`'s CPM work across `runners` and merges the partials
/// into the final result. One driver thread per runner pulls shards from
/// a shared queue; a runner that errors is **retired** (its in-flight
/// shard requeued for a survivor, counting one attempt), so worker death
/// degrades capacity instead of failing the sweep. Results merge through
/// [`merge_partials`], preserving bit-identity with the solo run.
///
/// # Errors
///
/// * [`DistError::NoWorkers`] — `runners` is empty.
/// * [`DistError::ShardFailed`] — a shard exhausted
///   [`DistConfig::max_attempts`] or no runner survives to retry it.
/// * [`DistError::Timeout`] — the watchdog expired with shards
///   outstanding (e.g. every remaining runner is silently wedged).
/// * [`DistError::Merge`] — a worker returned partials inconsistent with
///   the stage's work list.
pub fn run_sharded(
    stage: &SubsetsSelected,
    runners: Vec<Box<dyn ShardRunner>>,
    config: &DistConfig,
) -> Result<JigsawResult, DistError> {
    if runners.is_empty() {
        return Err(DistError::NoWorkers);
    }
    let shards = plan_shards(cpm_count(stage), config.shard_size);
    let total = shards.len();
    let sweep = Sweep {
        queue: Mutex::new(
            "dist.queue",
            SweepState {
                pending: shards.into_iter().map(|s| (s, 0)).collect(),
                results: Vec::new(),
                failure: None,
                active: runners.len(),
                in_flight: 0,
            },
        ),
        changed: Condvar::new(),
    };
    std::thread::scope(|scope| {
        for mut runner in runners {
            let sweep = &sweep;
            scope.spawn(move || runner_loop(sweep, stage, runner.as_mut(), config, total));
        }
        watch(&sweep, config, total);
    });
    let mut state = sweep.queue.lock();
    if let Some(failure) = state.failure.take() {
        return Err(failure);
    }
    let results = std::mem::take(&mut state.results);
    drop(state);
    merge_partials(stage.clone(), results)
}

/// The watchdog: waits for completion or failure, accumulating wait time
/// in [`POLL_INTERVAL`] units, and converts expiry into a typed
/// [`DistError::Timeout`] so a silent worker can never hang the driver.
fn watch(sweep: &Sweep, config: &DistConfig, total: usize) {
    let mut waited = Duration::ZERO;
    let mut state = sweep.queue.lock();
    loop {
        if state.failure.is_some() || state.results.len() == total {
            break;
        }
        if waited >= config.watchdog {
            state.failure =
                Some(DistError::Timeout { waited, unfinished: total - state.results.len() });
            break;
        }
        let (guard, _) = sweep.changed.wait_timeout(state, POLL_INTERVAL);
        state = guard;
        waited += POLL_INTERVAL;
    }
    drop(state);
    sweep.changed.notify_all();
}

/// One driver thread: pull a shard, run it on this runner, report. An
/// error retires the runner after requeueing (or failing) its shard.
fn runner_loop(
    sweep: &Sweep,
    stage: &SubsetsSelected,
    runner: &mut dyn ShardRunner,
    config: &DistConfig,
    total: usize,
) {
    loop {
        let (shard, attempts) = {
            let mut state = sweep.queue.lock();
            loop {
                if state.failure.is_some() || state.results.len() == total {
                    return;
                }
                if let Some((shard, attempts)) = state.pending.pop_front() {
                    state.in_flight += 1;
                    break (shard, attempts);
                }
                let (guard, _) = sweep.changed.wait_timeout(state, POLL_INTERVAL);
                state = guard;
            }
        };
        match runner.run_shard(stage, &shard, config.priority) {
            Ok(partial) => {
                telemetry::dist_shards("ok").inc();
                let mut state = sweep.queue.lock();
                state.in_flight -= 1;
                state.results.push(partial);
                drop(state);
                sweep.changed.notify_all();
            }
            Err(message) => {
                telemetry::dist_shards("error").inc();
                let attempts = attempts + 1;
                let mut state = sweep.queue.lock();
                state.in_flight -= 1;
                state.active -= 1;
                let mut requeued = false;
                if state.failure.is_some() {
                    // The sweep already failed terminally (e.g. the
                    // watchdog expired while this runner was wedged);
                    // the first failure wins.
                } else if attempts >= config.max_attempts.max(1) {
                    state.failure = Some(DistError::ShardFailed {
                        shard_index: shard.index,
                        attempts,
                        last_error: message,
                    });
                } else if state.active == 0 {
                    state.failure = Some(DistError::ShardFailed {
                        shard_index: shard.index,
                        attempts,
                        last_error: format!("no surviving workers: {message}"),
                    });
                } else {
                    state.pending.push_back((shard, attempts));
                    requeued = true;
                }
                drop(state);
                if requeued {
                    telemetry::dist_retries().inc();
                }
                sweep.changed.notify_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_shards_tiles_the_work_list() {
        assert!(plan_shards(0, 4).is_empty());
        let shards = plan_shards(10, 4);
        assert_eq!(
            shards,
            vec![
                Shard { index: 0, lo: 0, hi: 4 },
                Shard { index: 1, lo: 4, hi: 8 },
                Shard { index: 2, lo: 8, hi: 10 },
            ]
        );
        // A zero shard size is clamped, never a divide-by-zero.
        assert_eq!(plan_shards(3, 0).len(), 3);
        let one = plan_shards(5, 16);
        assert_eq!(one, vec![Shard { index: 0, lo: 0, hi: 5 }]);
    }

    #[test]
    fn shard_decode_rejects_inverted_ranges() {
        use jigsaw_pmf::codec::{decode_from_slice, encode_to_vec};
        let shard = Shard { index: 1, lo: 3, hi: 9 };
        assert_eq!(decode_from_slice::<Shard>(&encode_to_vec(&shard)).unwrap(), shard);
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u64(5);
        w.put_u64(5);
        assert!(decode_from_slice::<Shard>(&w.into_bytes()).is_err());
    }

    #[test]
    fn dist_error_displays_every_variant() {
        let cases = [
            (DistError::NoWorkers, "at least one worker"),
            (
                DistError::ShardFailed { shard_index: 3, attempts: 2, last_error: "boom".into() },
                "shard 3 failed after 2",
            ),
            (
                DistError::Timeout { waited: Duration::from_millis(50), unfinished: 4 },
                "4 shard(s) outstanding",
            ),
            (DistError::Merge { detail: "gap".into() }, "do not merge: gap"),
        ];
        for (err, needle) in cases {
            assert!(format!("{err}").contains(needle), "{err}");
        }
    }
}
