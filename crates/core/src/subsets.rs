//! Qubit-subset generation for Circuits with Partial Measurements.
//!
//! The default is the paper's sliding-window method (§4.2.1): an `n`-qubit
//! program yields `n` windows of the requested size with wrap-around, e.g.
//! size 2 over 4 qubits gives (q0,q1), (q1,q2), (q2,q3), (q3,q0). Random
//! and coverage-constrained selections support the Fig. 9 sensitivity
//! studies, and [`adaptive`] chooses subsets from the global-mode PMF —
//! the measurement-steering direction only the staged pipeline can
//! express, since it needs an artifact from mid-protocol.

use jigsaw_pmf::hashing::DetHashSet;
use jigsaw_pmf::{metrics, Pmf};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How CPM subsets are chosen.
///
/// # Examples
///
/// ```
/// use jigsaw_core::subsets::{generate, SubsetSelection};
///
/// // The paper's default: n wrap-around windows (seed is ignored).
/// let windows = generate(4, 2, SubsetSelection::SlidingWindow, 0);
/// assert_eq!(windows, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
///
/// // Random covering: every qubit measured at least once, seed-determined.
/// let covering = generate(5, 2, SubsetSelection::RandomCovering, 7);
/// assert!((0..5).all(|q| covering.iter().any(|s| s.contains(&q))));
/// ```
///
/// [`SubsetSelection::Adaptive`] has no `generate` form — it is resolved
/// against the global-mode PMF inside
/// [`GlobalRun::select_subsets`](crate::pipeline::GlobalRun::select_subsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetSelection {
    /// The paper's default: `n` wrap-around windows per subset size.
    SlidingWindow,
    /// `count` distinct uniformly random subsets (Fig. 9a).
    Random {
        /// Number of subsets to draw.
        count: usize,
    },
    /// `n` random subsets constrained so every qubit is measured at least
    /// once (Fig. 9b).
    RandomCovering,
    /// Subsets derived from the global-mode PMF: qubits grouped by pairwise
    /// mutual information, highest-entropy qubits first, until every qubit
    /// is covered (see [`adaptive`]). Requires the global run to have
    /// happened, so it is only available through the staged
    /// [`JigsawPipeline`](crate::pipeline::JigsawPipeline) (which
    /// [`run_jigsaw`](crate::run_jigsaw) drives internally).
    Adaptive,
}

/// Wire format: one tag byte per variant (`0` sliding window, `1` random
/// plus its `count`, `2` random covering, `3` adaptive).
impl jigsaw_pmf::codec::Encode for SubsetSelection {
    fn encode(&self, w: &mut jigsaw_pmf::codec::Writer) {
        match self {
            Self::SlidingWindow => w.put_u8(0),
            Self::Random { count } => {
                w.put_u8(1);
                w.put_usize(*count);
            }
            Self::RandomCovering => w.put_u8(2),
            Self::Adaptive => w.put_u8(3),
        }
    }
}

impl jigsaw_pmf::codec::Decode for SubsetSelection {
    fn decode(
        r: &mut jigsaw_pmf::codec::Reader<'_>,
    ) -> Result<Self, jigsaw_pmf::codec::CodecError> {
        match r.u8()? {
            0 => Ok(Self::SlidingWindow),
            1 => Ok(Self::Random { count: r.usize()? }),
            2 => Ok(Self::RandomCovering),
            3 => Ok(Self::Adaptive),
            tag => Err(jigsaw_pmf::codec::CodecError::InvalidTag { what: "SubsetSelection", tag }),
        }
    }
}

/// Generates subsets of `size` qubits out of `n` according to `selection`.
///
/// Results are deterministic in `seed` for the random modes; the sliding
/// window ignores the seed.
///
/// # Panics
///
/// Panics if `size` is zero or larger than `n`, if a random selection
/// requests more distinct subsets than exist, or if `selection` is
/// [`SubsetSelection::Adaptive`] — adaptive selection consumes the
/// global-mode PMF, which this signature does not carry; call [`adaptive`]
/// (or drive the staged pipeline) instead.
#[must_use]
pub fn generate(n: usize, size: usize, selection: SubsetSelection, seed: u64) -> Vec<Vec<usize>> {
    assert!(size >= 1, "subset size must be positive");
    assert!(size <= n, "subset of {size} qubits out of {n} is impossible");
    match selection {
        SubsetSelection::SlidingWindow => sliding_window(n, size),
        SubsetSelection::Random { count } => random_distinct(n, size, count, seed),
        SubsetSelection::RandomCovering => random_covering(n, size, seed),
        SubsetSelection::Adaptive => panic!(
            "SubsetSelection::Adaptive derives subsets from the global-mode PMF; \
             call subsets::adaptive(&global_pmf, size) or drive the staged pipeline"
        ),
    }
}

/// Chooses subsets of `size` qubits from the global-mode PMF: anchor on the
/// highest-marginal-entropy uncovered qubit, grow each subset with the
/// qubits sharing the most pairwise mutual information with it, repeat
/// until every qubit is covered.
///
/// Rationale (§4.3's coverage argument, pushed in the QuTracer direction):
/// the global run already estimates which qubits are uncertain (high
/// marginal entropy) and which move together (high mutual information).
/// Measuring correlated groups in one CPM lets the Bayesian update correct
/// their *joint* marginal instead of two independent ones, while
/// low-entropy qubits — already effectively classical in the prior — need
/// the least CPM budget, so they are covered last and never anchor a
/// subset.
///
/// The construction is fully deterministic: no RNG, ties broken by
/// (entropy, lowest index), and entropies/MI are computed in canonical
/// entry order, so equal PMFs always yield identical subsets. Every qubit
/// is guaranteed to appear in at least one subset, and the number of
/// subsets lies between `⌈n/size⌉` (disjoint groups) and `n`.
///
/// # Panics
///
/// Panics if `size` is zero or larger than the PMF width.
#[must_use]
pub fn adaptive(global: &Pmf, size: usize) -> Vec<Vec<usize>> {
    adaptive_layers(global, &[size], 1).pop().expect("one size requested")
}

/// [`adaptive`] for several subset sizes at once, computing the marginal
/// entropies and the `O(n²)`-pair mutual-information matrix **once** and
/// reusing them per size — the multi-layer (JigSaw-M) path. Returns one
/// subset list per requested size, in request order. The MI matrix is
/// skipped entirely when every requested size is 1 (singleton subsets
/// never consult it).
///
/// The pairwise joint-marginal scans dominate on wide programs
/// (`n(n−1)/2` full-support passes), so they fan across the worker team;
/// `threads` follows the [`fan_out`](jigsaw_pmf::parallel::fan_out)
/// convention (`0` = all cores, `1` = serial). Each pair is scored
/// independently and results merge in pair order, so the output is
/// identical at every setting.
///
/// # Panics
///
/// Panics if any size is zero or larger than the PMF width.
#[must_use]
pub fn adaptive_layers(global: &Pmf, sizes: &[usize], threads: usize) -> Vec<Vec<Vec<usize>>> {
    let n = global.n_bits();
    for &size in sizes {
        assert!(size >= 1, "subset size must be positive");
        assert!(size <= n, "subset of {size} qubits out of {n} is impossible");
    }

    let entropy: Vec<f64> = (0..n).map(|q| metrics::entropy(&global.marginal(&[q]))).collect();
    let mut mi = vec![vec![0.0f64; n]; n];
    if sizes.iter().any(|&s| s > 1) {
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|a| ((a + 1)..n).map(move |b| (a, b))).collect();
        // I(a; b) = H(a) + H(b) − H(a, b), clamped: sampling noise can
        // push the estimate a hair below zero.
        let scored = jigsaw_pmf::parallel::fan_out(pairs, threads, |(a, b)| {
            let joint = metrics::entropy(&global.marginal(&[a, b]));
            (a, b, (entropy[a] + entropy[b] - joint).max(0.0))
        });
        for (a, b, info) in scored {
            mi[a][b] = info;
            mi[b][a] = info;
        }
    }
    sizes.iter().map(|&size| adaptive_cover(&entropy, &mi, size)).collect()
}

/// One greedy cover pass over precomputed entropies and MI.
fn adaptive_cover(entropy: &[f64], mi: &[Vec<f64>], size: usize) -> Vec<Vec<usize>> {
    let n = entropy.len();
    let mut covered = vec![false; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    while covered.iter().any(|&c| !c) {
        // Anchor: the most uncertain uncovered qubit (strict `>` keeps the
        // lowest index on ties).
        let mut anchor = usize::MAX;
        for q in 0..n {
            if !covered[q] && (anchor == usize::MAX || entropy[q] > entropy[anchor]) {
                anchor = q;
            }
        }
        let mut subset = vec![anchor];
        while subset.len() < size {
            // Partner: the qubit sharing the most information with the
            // subset so far; entropy then lowest index break ties.
            let mut best = usize::MAX;
            let mut best_score = f64::NEG_INFINITY;
            for q in 0..n {
                if subset.contains(&q) {
                    continue;
                }
                let score: f64 = subset.iter().map(|&m| mi[q][m]).sum();
                let better = score > best_score
                    || (score == best_score && best != usize::MAX && entropy[q] > entropy[best]);
                if better {
                    best = q;
                    best_score = score;
                }
            }
            subset.push(best);
        }
        subset.sort_unstable();
        for &q in &subset {
            covered[q] = true;
        }
        out.push(subset);
    }
    out
}

/// The paper's sliding-window subsets: windows `[i, i+1, …, i+size−1]`
/// (indices mod `n`) for every start `i`, deduplicated (relevant when
/// `size = n`).
#[must_use]
pub fn sliding_window(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut seen: DetHashSet<Vec<usize>> = DetHashSet::default();
    for start in 0..n {
        let mut w: Vec<usize> = (0..size).map(|k| (start + k) % n).collect();
        w.sort_unstable();
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

/// `count` distinct random subsets of `size` qubits.
///
/// # Panics
///
/// Panics if `count` exceeds the number of distinct subsets `C(n, size)`.
/// When `C(n, size)` saturates ([`binomial`] caps at `u128::MAX`) the true
/// count cannot be exceeded by any `usize` request, so the check passes —
/// as it should.
#[must_use]
pub fn random_distinct(n: usize, size: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let total = binomial(n, size);
    assert!(
        count as u128 <= total,
        "asked for {count} subsets but only {total} distinct {size}-of-{n} subsets exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(count);
    let mut seen: DetHashSet<Vec<usize>> = DetHashSet::default();
    while out.len() < count {
        let mut s = sample_subset(n, size, &mut rng);
        s.sort_unstable();
        if seen.insert(s.clone()) {
            out.push(s);
        }
    }
    out
}

/// `n` random subsets such that every qubit appears in at least one.
///
/// Coverage is guaranteed **constructively**: the qubits are dealt into the
/// `n` subsets through a random permutation (subset `j` is anchored on the
/// `j`-th dealt qubit) and each subset is then filled with `size − 1`
/// further random qubits. Rejection sampling would be hopeless here — for
/// `size = 1` the chance that `n` independent draws cover all `n` qubits is
/// `n!/nⁿ` (≈ 2·10⁻⁸ at `n = 20`), so a resample loop effectively never
/// terminates — whereas the anchor construction needs exactly one pass and
/// stays a pure function of the seed.
#[must_use]
pub fn random_covering(n: usize, size: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut anchors: Vec<usize> = (0..n).collect();
    anchors.shuffle(&mut rng);
    anchors
        .into_iter()
        .map(|anchor| {
            let mut rest: Vec<usize> = (0..n).filter(|&q| q != anchor).collect();
            rest.shuffle(&mut rng);
            rest.truncate(size - 1);
            rest.push(anchor);
            rest.sort_unstable();
            rest
        })
        .collect()
}

fn sample_subset<R: Rng>(n: usize, size: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(size);
    all
}

/// Binomial coefficient `C(n, k)` as `u128`, **saturating** at `u128::MAX`.
///
/// Wide programs overflow any fixed-width integer — `C(256, 128) ≈ 5.8·10⁷⁵`
/// dwarfs `u128::MAX ≈ 3.4·10³⁸` — so each step reduces the running product
/// by `gcd(n − i, i + 1)` (making every intermediate exactly the partial
/// binomial `C(n, i + 1)`) and uses a checked multiply: the result pins to
/// `u128::MAX` precisely when the true count no longer fits. Saturation
/// only ever *under*-reports how many subsets exist, so callers comparing a
/// requested subset count against this value stay conservative.
#[must_use]
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        // num = C(n, i); the gcd-reduced step keeps the arithmetic exact:
        // b | C(n, i) because C(n, i+1) is an integer and gcd(a, b) = 1.
        let g = gcd(n - i, i + 1);
        let a = ((n - i) / g) as u128;
        let b = ((i + 1) / g) as u128;
        match (num / b).checked_mul(a) {
            Some(next) => num = next,
            None => return u128::MAX,
        }
    }
    num
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_matches_paper_example() {
        // §4.2.1: a 4-qubit program yields (q0,q1), (q1,q2), (q2,q3), (q0,q3).
        let w = sliding_window(4, 2);
        assert_eq!(w, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    }

    #[test]
    fn sliding_window_count_equals_qubits() {
        for n in [5, 8, 13] {
            for s in [2, 3, 5] {
                if s < n {
                    assert_eq!(sliding_window(n, s).len(), n, "n={n} s={s}");
                }
            }
        }
    }

    #[test]
    fn sliding_window_full_size_collapses_to_one() {
        assert_eq!(sliding_window(5, 5).len(), 1);
    }

    #[test]
    fn sliding_window_covers_every_qubit() {
        let w = sliding_window(9, 3);
        for q in 0..9 {
            assert!(w.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
        }
    }

    #[test]
    fn random_distinct_has_no_duplicates() {
        let subsets = random_distinct(12, 2, 30, 7);
        assert_eq!(subsets.len(), 30);
        for (i, a) in subsets.iter().enumerate() {
            assert_eq!(a.len(), 2);
            for b in &subsets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn random_distinct_can_enumerate_all() {
        // 12C2 = 66, the Fig. 9a census.
        assert_eq!(binomial(12, 2), 66);
        let all = random_distinct(12, 2, 66, 3);
        assert_eq!(all.len(), 66);
    }

    #[test]
    fn random_covering_covers() {
        for seed in 0..5 {
            let subsets = random_covering(12, 2, seed);
            assert_eq!(subsets.len(), 12);
            for q in 0..12 {
                assert!(subsets.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
            }
        }
    }

    #[test]
    fn random_covering_terminates_for_singleton_subsets() {
        // Regression: rejection sampling had success probability n!/nⁿ for
        // size 1 (≈ 5·10⁻¹⁰ at n = 24) and effectively never returned; the
        // constructive variant covers in one pass.
        for seed in 0..3 {
            let subsets = random_covering(24, 1, seed);
            assert_eq!(subsets.len(), 24);
            for q in 0..24 {
                assert!(subsets.iter().any(|s| s == &vec![q]), "qubit {q} uncovered");
            }
        }
    }

    #[test]
    fn random_covering_is_seed_deterministic_with_correct_sizes() {
        let a = random_covering(15, 3, 9);
        let b = random_covering(15, 3, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| s.len() == 3));
        // Subsets hold distinct, in-range, sorted qubits.
        for s in &a {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&q| q < 15));
        }
        let c = random_covering(15, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        let b = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        assert_eq!(a, b);
        let c = generate(10, 3, SubsetSelection::Random { count: 5 }, 12);
        assert_ne!(a, c);
    }

    fn pmf(n: usize, entries: &[(&str, f64)]) -> Pmf {
        let mut p = Pmf::new(n);
        for (s, v) in entries {
            p.set(s.parse().unwrap(), *v);
        }
        p
    }

    #[test]
    fn adaptive_groups_correlated_qubits() {
        // Bits are printed MSB-first (q3 q2 q1 q0): q0 and q1 are perfectly
        // correlated, q2 is uniform but independent, q3 is deterministic.
        let p = pmf(4, &[("0011", 0.25), ("0000", 0.25), ("0111", 0.25), ("0100", 0.25)]);
        let subsets = adaptive(&p, 2);
        assert!(
            subsets.contains(&vec![0, 1]),
            "correlated pair (q0, q1) should share a subset: {subsets:?}"
        );
        for q in 0..4 {
            assert!(subsets.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
        }
    }

    #[test]
    fn adaptive_covers_and_is_deterministic() {
        let p = Pmf::uniform(7);
        let a = adaptive(&p, 3);
        let b = adaptive(&p, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| s.len() == 3 && s.windows(2).all(|w| w[0] < w[1])));
        for q in 0..7 {
            assert!(a.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
        }
        // Between ⌈7/3⌉ and 7 subsets.
        assert!(a.len() >= 3 && a.len() <= 7);
    }

    #[test]
    fn adaptive_singletons_enumerate_every_qubit() {
        let p = Pmf::uniform(5);
        let subsets = adaptive(&p, 1);
        assert_eq!(subsets.len(), 5);
        for q in 0..5 {
            assert!(subsets.contains(&vec![q]));
        }
    }

    #[test]
    #[should_panic(expected = "global-mode PMF")]
    fn generate_rejects_adaptive_without_a_pmf() {
        let _ = generate(6, 2, SubsetSelection::Adaptive, 0);
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
    }

    #[test]
    fn binomial_saturates_instead_of_overflowing() {
        // C(128, 64) ≈ 2.4·10³⁷ still fits in a u128...
        assert_eq!(binomial(128, 64), 23_951_146_041_928_082_866_135_587_776_380_551_750);
        // ...but C(256, 128) ≈ 5.8·10⁷⁵ does not: the old wrapping multiply
        // produced an arbitrary (and debug-build panicking) value; now the
        // count pins to u128::MAX.
        assert_eq!(binomial(256, 128), u128::MAX);
        assert_eq!(binomial(250, 125), u128::MAX);
    }

    #[test]
    fn oversubscription_check_stays_meaningful_at_saturation() {
        // At saturation the true subset count exceeds any usize request, so
        // random_distinct must accept rather than spuriously panic.
        let subsets = random_distinct(200, 100, 3, 1);
        assert_eq!(subsets.len(), 3);
        assert!(subsets.iter().all(|s| s.len() == 100));
    }

    #[test]
    #[should_panic(expected = "only 6 distinct")]
    fn oversubscribed_random_panics() {
        let _ = random_distinct(4, 2, 7, 0);
    }
}
