//! Qubit-subset generation for Circuits with Partial Measurements.
//!
//! The default is the paper's sliding-window method (§4.2.1): an `n`-qubit
//! program yields `n` windows of the requested size with wrap-around, e.g.
//! size 2 over 4 qubits gives (q0,q1), (q1,q2), (q2,q3), (q3,q0). Random
//! and coverage-constrained selections support the Fig. 9 sensitivity
//! studies.

use jigsaw_pmf::hashing::DetHashSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How CPM subsets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetSelection {
    /// The paper's default: `n` wrap-around windows per subset size.
    SlidingWindow,
    /// `count` distinct uniformly random subsets (Fig. 9a).
    Random {
        /// Number of subsets to draw.
        count: usize,
    },
    /// `n` random subsets constrained so every qubit is measured at least
    /// once (Fig. 9b).
    RandomCovering,
}

/// Generates subsets of `size` qubits out of `n` according to `selection`.
///
/// Results are deterministic in `seed` for the random modes; the sliding
/// window ignores the seed.
///
/// # Panics
///
/// Panics if `size` is zero or larger than `n`, or if a random selection
/// requests more distinct subsets than exist.
#[must_use]
pub fn generate(n: usize, size: usize, selection: SubsetSelection, seed: u64) -> Vec<Vec<usize>> {
    assert!(size >= 1, "subset size must be positive");
    assert!(size <= n, "subset of {size} qubits out of {n} is impossible");
    match selection {
        SubsetSelection::SlidingWindow => sliding_window(n, size),
        SubsetSelection::Random { count } => random_distinct(n, size, count, seed),
        SubsetSelection::RandomCovering => random_covering(n, size, seed),
    }
}

/// The paper's sliding-window subsets: windows `[i, i+1, …, i+size−1]`
/// (indices mod `n`) for every start `i`, deduplicated (relevant when
/// `size = n`).
#[must_use]
pub fn sliding_window(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut seen: DetHashSet<Vec<usize>> = DetHashSet::default();
    for start in 0..n {
        let mut w: Vec<usize> = (0..size).map(|k| (start + k) % n).collect();
        w.sort_unstable();
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

/// `count` distinct random subsets of `size` qubits.
///
/// # Panics
///
/// Panics if `count` exceeds the number of distinct subsets `C(n, size)`.
/// When `C(n, size)` saturates ([`binomial`] caps at `u128::MAX`) the true
/// count cannot be exceeded by any `usize` request, so the check passes —
/// as it should.
#[must_use]
pub fn random_distinct(n: usize, size: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let total = binomial(n, size);
    assert!(
        count as u128 <= total,
        "asked for {count} subsets but only {total} distinct {size}-of-{n} subsets exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(count);
    let mut seen: DetHashSet<Vec<usize>> = DetHashSet::default();
    while out.len() < count {
        let mut s = sample_subset(n, size, &mut rng);
        s.sort_unstable();
        if seen.insert(s.clone()) {
            out.push(s);
        }
    }
    out
}

/// `n` random subsets such that every qubit appears in at least one.
///
/// Coverage is guaranteed **constructively**: the qubits are dealt into the
/// `n` subsets through a random permutation (subset `j` is anchored on the
/// `j`-th dealt qubit) and each subset is then filled with `size − 1`
/// further random qubits. Rejection sampling would be hopeless here — for
/// `size = 1` the chance that `n` independent draws cover all `n` qubits is
/// `n!/nⁿ` (≈ 2·10⁻⁸ at `n = 20`), so a resample loop effectively never
/// terminates — whereas the anchor construction needs exactly one pass and
/// stays a pure function of the seed.
#[must_use]
pub fn random_covering(n: usize, size: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut anchors: Vec<usize> = (0..n).collect();
    anchors.shuffle(&mut rng);
    anchors
        .into_iter()
        .map(|anchor| {
            let mut rest: Vec<usize> = (0..n).filter(|&q| q != anchor).collect();
            rest.shuffle(&mut rng);
            rest.truncate(size - 1);
            rest.push(anchor);
            rest.sort_unstable();
            rest
        })
        .collect()
}

fn sample_subset<R: Rng>(n: usize, size: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(size);
    all
}

/// Binomial coefficient `C(n, k)` as `u128`, **saturating** at `u128::MAX`.
///
/// Wide programs overflow any fixed-width integer — `C(256, 128) ≈ 5.8·10⁷⁵`
/// dwarfs `u128::MAX ≈ 3.4·10³⁸` — so each step reduces the running product
/// by `gcd(n − i, i + 1)` (making every intermediate exactly the partial
/// binomial `C(n, i + 1)`) and uses a checked multiply: the result pins to
/// `u128::MAX` precisely when the true count no longer fits. Saturation
/// only ever *under*-reports how many subsets exist, so callers comparing a
/// requested subset count against this value stay conservative.
#[must_use]
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        // num = C(n, i); the gcd-reduced step keeps the arithmetic exact:
        // b | C(n, i) because C(n, i+1) is an integer and gcd(a, b) = 1.
        let g = gcd(n - i, i + 1);
        let a = ((n - i) / g) as u128;
        let b = ((i + 1) / g) as u128;
        match (num / b).checked_mul(a) {
            Some(next) => num = next,
            None => return u128::MAX,
        }
    }
    num
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_matches_paper_example() {
        // §4.2.1: a 4-qubit program yields (q0,q1), (q1,q2), (q2,q3), (q0,q3).
        let w = sliding_window(4, 2);
        assert_eq!(w, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    }

    #[test]
    fn sliding_window_count_equals_qubits() {
        for n in [5, 8, 13] {
            for s in [2, 3, 5] {
                if s < n {
                    assert_eq!(sliding_window(n, s).len(), n, "n={n} s={s}");
                }
            }
        }
    }

    #[test]
    fn sliding_window_full_size_collapses_to_one() {
        assert_eq!(sliding_window(5, 5).len(), 1);
    }

    #[test]
    fn sliding_window_covers_every_qubit() {
        let w = sliding_window(9, 3);
        for q in 0..9 {
            assert!(w.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
        }
    }

    #[test]
    fn random_distinct_has_no_duplicates() {
        let subsets = random_distinct(12, 2, 30, 7);
        assert_eq!(subsets.len(), 30);
        for (i, a) in subsets.iter().enumerate() {
            assert_eq!(a.len(), 2);
            for b in &subsets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn random_distinct_can_enumerate_all() {
        // 12C2 = 66, the Fig. 9a census.
        assert_eq!(binomial(12, 2), 66);
        let all = random_distinct(12, 2, 66, 3);
        assert_eq!(all.len(), 66);
    }

    #[test]
    fn random_covering_covers() {
        for seed in 0..5 {
            let subsets = random_covering(12, 2, seed);
            assert_eq!(subsets.len(), 12);
            for q in 0..12 {
                assert!(subsets.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
            }
        }
    }

    #[test]
    fn random_covering_terminates_for_singleton_subsets() {
        // Regression: rejection sampling had success probability n!/nⁿ for
        // size 1 (≈ 5·10⁻¹⁰ at n = 24) and effectively never returned; the
        // constructive variant covers in one pass.
        for seed in 0..3 {
            let subsets = random_covering(24, 1, seed);
            assert_eq!(subsets.len(), 24);
            for q in 0..24 {
                assert!(subsets.iter().any(|s| s == &vec![q]), "qubit {q} uncovered");
            }
        }
    }

    #[test]
    fn random_covering_is_seed_deterministic_with_correct_sizes() {
        let a = random_covering(15, 3, 9);
        let b = random_covering(15, 3, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|s| s.len() == 3));
        // Subsets hold distinct, in-range, sorted qubits.
        for s in &a {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&q| q < 15));
        }
        let c = random_covering(15, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        let b = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        assert_eq!(a, b);
        let c = generate(10, 3, SubsetSelection::Random { count: 5 }, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
    }

    #[test]
    fn binomial_saturates_instead_of_overflowing() {
        // C(128, 64) ≈ 2.4·10³⁷ still fits in a u128...
        assert_eq!(binomial(128, 64), 23_951_146_041_928_082_866_135_587_776_380_551_750);
        // ...but C(256, 128) ≈ 5.8·10⁷⁵ does not: the old wrapping multiply
        // produced an arbitrary (and debug-build panicking) value; now the
        // count pins to u128::MAX.
        assert_eq!(binomial(256, 128), u128::MAX);
        assert_eq!(binomial(250, 125), u128::MAX);
    }

    #[test]
    fn oversubscription_check_stays_meaningful_at_saturation() {
        // At saturation the true subset count exceeds any usize request, so
        // random_distinct must accept rather than spuriously panic.
        let subsets = random_distinct(200, 100, 3, 1);
        assert_eq!(subsets.len(), 3);
        assert!(subsets.iter().all(|s| s.len() == 100));
    }

    #[test]
    #[should_panic(expected = "only 6 distinct")]
    fn oversubscribed_random_panics() {
        let _ = random_distinct(4, 2, 7, 0);
    }
}
