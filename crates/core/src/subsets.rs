//! Qubit-subset generation for Circuits with Partial Measurements.
//!
//! The default is the paper's sliding-window method (§4.2.1): an `n`-qubit
//! program yields `n` windows of the requested size with wrap-around, e.g.
//! size 2 over 4 qubits gives (q0,q1), (q1,q2), (q2,q3), (q3,q0). Random
//! and coverage-constrained selections support the Fig. 9 sensitivity
//! studies.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How CPM subsets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetSelection {
    /// The paper's default: `n` wrap-around windows per subset size.
    SlidingWindow,
    /// `count` distinct uniformly random subsets (Fig. 9a).
    Random {
        /// Number of subsets to draw.
        count: usize,
    },
    /// `n` random subsets constrained so every qubit is measured at least
    /// once (Fig. 9b).
    RandomCovering,
}

/// Generates subsets of `size` qubits out of `n` according to `selection`.
///
/// Results are deterministic in `seed` for the random modes; the sliding
/// window ignores the seed.
///
/// # Panics
///
/// Panics if `size` is zero or larger than `n`, or if a random selection
/// requests more distinct subsets than exist.
#[must_use]
pub fn generate(n: usize, size: usize, selection: SubsetSelection, seed: u64) -> Vec<Vec<usize>> {
    assert!(size >= 1, "subset size must be positive");
    assert!(size <= n, "subset of {size} qubits out of {n} is impossible");
    match selection {
        SubsetSelection::SlidingWindow => sliding_window(n, size),
        SubsetSelection::Random { count } => random_distinct(n, size, count, seed),
        SubsetSelection::RandomCovering => random_covering(n, size, seed),
    }
}

/// The paper's sliding-window subsets: windows `[i, i+1, …, i+size−1]`
/// (indices mod `n`) for every start `i`, deduplicated (relevant when
/// `size = n`).
#[must_use]
pub fn sliding_window(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(n);
    for start in 0..n {
        let mut w: Vec<usize> = (0..size).map(|k| (start + k) % n).collect();
        w.sort_unstable();
        if !out.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// `count` distinct random subsets of `size` qubits.
///
/// # Panics
///
/// Panics if `count` exceeds the number of distinct subsets `C(n, size)`.
#[must_use]
pub fn random_distinct(n: usize, size: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
    let total = binomial(n, size);
    assert!(
        count as u128 <= total,
        "asked for {count} subsets but only {total} distinct {size}-of-{n} subsets exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = Vec::with_capacity(count);
    while out.len() < count {
        let mut s = sample_subset(n, size, &mut rng);
        s.sort_unstable();
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// `n` random subsets such that every qubit appears in at least one.
#[must_use]
pub fn random_covering(n: usize, size: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut subsets: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut covered = vec![false; n];
        for _ in 0..n {
            let mut s = sample_subset(n, size, &mut rng);
            s.sort_unstable();
            for &q in &s {
                covered[q] = true;
            }
            subsets.push(s);
        }
        if covered.iter().all(|&c| c) {
            return subsets;
        }
        // Extremely unlikely to loop for size ≥ 2; resample for safety.
    }
}

fn sample_subset<R: Rng>(n: usize, size: usize, rng: &mut R) -> Vec<usize> {
    let mut all: Vec<usize> = (0..n).collect();
    all.shuffle(rng);
    all.truncate(size);
    all
}

/// Binomial coefficient `C(n, k)` as `u128` (saturating enough for subset
/// counting on ≤256-qubit programs).
#[must_use]
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * (n - i) as u128 / (i + 1) as u128;
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_matches_paper_example() {
        // §4.2.1: a 4-qubit program yields (q0,q1), (q1,q2), (q2,q3), (q0,q3).
        let w = sliding_window(4, 2);
        assert_eq!(w, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    }

    #[test]
    fn sliding_window_count_equals_qubits() {
        for n in [5, 8, 13] {
            for s in [2, 3, 5] {
                if s < n {
                    assert_eq!(sliding_window(n, s).len(), n, "n={n} s={s}");
                }
            }
        }
    }

    #[test]
    fn sliding_window_full_size_collapses_to_one() {
        assert_eq!(sliding_window(5, 5).len(), 1);
    }

    #[test]
    fn sliding_window_covers_every_qubit() {
        let w = sliding_window(9, 3);
        for q in 0..9 {
            assert!(w.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
        }
    }

    #[test]
    fn random_distinct_has_no_duplicates() {
        let subsets = random_distinct(12, 2, 30, 7);
        assert_eq!(subsets.len(), 30);
        for (i, a) in subsets.iter().enumerate() {
            assert_eq!(a.len(), 2);
            for b in &subsets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn random_distinct_can_enumerate_all() {
        // 12C2 = 66, the Fig. 9a census.
        assert_eq!(binomial(12, 2), 66);
        let all = random_distinct(12, 2, 66, 3);
        assert_eq!(all.len(), 66);
    }

    #[test]
    fn random_covering_covers() {
        for seed in 0..5 {
            let subsets = random_covering(12, 2, seed);
            assert_eq!(subsets.len(), 12);
            for q in 0..12 {
                assert!(subsets.iter().any(|s| s.contains(&q)), "qubit {q} uncovered");
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        let b = generate(10, 3, SubsetSelection::Random { count: 5 }, 11);
        assert_eq!(a, b);
        let c = generate(10, 3, SubsetSelection::Random { count: 5 }, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn binomial_known_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(50, 25), 126_410_606_437_752);
    }

    #[test]
    #[should_panic(expected = "only 6 distinct")]
    fn oversubscribed_random_panics() {
        let _ = random_distinct(4, 2, 7, 0);
    }
}
