//! Versioned on-disk archives for pipeline stages — the persistence layer
//! that lets sweeps resume across *processes and machines*, not just forks
//! within one process.
//!
//! A checkpoint wraps one encoded stage ([`Planned`], [`GlobalCompiled`],
//! [`GlobalRun`] or [`SubsetsSelected`]) in a small self-describing frame:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  89 4A 53 57 0D 0A 1A 0A  ("\x89JSW\r\n\x1a\n")
//!      8     2  format version (u16 LE)
//!     10     1  stage kind (1 planned … 4 subsets-selected)
//!     11     8  config digest: FNV-1a64 over encode(program) ‖
//!               encode(device) ‖ encode(config)
//!     19     8  payload length N (u64 LE)
//!     27     N  payload: the stage's `Encode` bytes
//!   27+N     8  payload checksum (FNV-1a64)
//! ```
//!
//! `docs/FORMAT.md` specifies every section byte by byte. Three properties
//! the framing guarantees:
//!
//! * **Refusal over divergence.** [`resume_from`] recomputes the config
//!   digest from the caller's `(program, device, config)` and refuses an
//!   archive whose digest differs ([`PersistError::ConfigMismatch`]) —
//!   resuming under a silently different configuration is the failure mode
//!   the digest exists to make loud.
//! * **Corruption is typed, never a panic.** Flipped magic bytes, unknown
//!   versions or stages, short reads, payload bit-flips and trailing
//!   garbage all surface as distinct [`PersistError`] variants (every
//!   single-byte change is caught: the FNV-1a step is a bijection of the
//!   running state, and the header fields are each independently checked).
//! * **Determinism.** Stage encodings are canonical and exclude wall-clock
//!   telemetry, so two runs of the same seed produce *byte-identical*
//!   archives, and `decode(encode(x))` re-encodes to the original bytes.
//!
//! # Examples
//!
//! Checkpoint the expensive global prefix, "crash", and resume it in a
//! fresh process bit-identically:
//!
//! ```
//! use jigsaw_circuit::bench;
//! use jigsaw_core::pipeline::{GlobalRun, JigsawPipeline};
//! use jigsaw_core::{persist, JigsawConfig};
//! use jigsaw_device::Device;
//! # use jigsaw_compiler::CompilerOptions;
//!
//! let device = Device::toronto();
//! let bench = bench::ghz(4);
//! let config = JigsawConfig {
//! #     compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
//!     ..JigsawConfig::jigsaw(400)
//! };
//!
//! // Pay the global compile + run once, then checkpoint it.
//! let shared = JigsawPipeline::plan(bench.circuit(), &device, &config)
//!     .compile_global()
//!     .run_global();
//! let bytes = persist::to_bytes(&shared);
//!
//! // ... process exits; later (anywhere) the archive resumes ...
//! let resumed: GlobalRun = persist::from_bytes(&bytes)?;
//! assert_eq!(resumed, shared);
//! let a = resumed.select_subsets().run_cpms().reconstruct();
//! let b = shared.select_subsets().run_cpms().reconstruct();
//! assert_eq!(a, b); // bit-identical replay
//! # Ok::<(), jigsaw_core::persist::PersistError>(())
//! ```

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use jigsaw_circuit::Circuit;
use jigsaw_device::Device;
use jigsaw_pmf::codec::{self, CodecError, Decode, Encode};

use crate::jigsaw::JigsawConfig;
use crate::pipeline::{GlobalCompiled, GlobalRun, JigsawPipeline, Planned, SubsetsSelected};

/// Archive magic: `\x89JSW\r\n\x1a\n`. PNG-style — the high first byte
/// catches 7-bit strippers, the `\r\n` and `\x1a` catch newline translation
/// and DOS type-probing.
pub const MAGIC: [u8; 8] = *b"\x89JSW\r\n\x1a\x0a";

/// Current archive format version. Bump on any layout change and document
/// the migration in `docs/FORMAT.md`.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed byte length of the archive header (everything before the payload).
pub const HEADER_LEN: usize = 8 + 2 + 1 + 8 + 8;

/// Which pipeline stage an archive holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A [`Planned`] stage (budget split, no artifacts yet).
    Planned,
    /// A [`GlobalCompiled`] stage (compiled global artifact).
    GlobalCompiled,
    /// A [`GlobalRun`] stage (global artifact + prior PMF) — the natural
    /// checkpoint for sweep resume.
    GlobalRun,
    /// A [`SubsetsSelected`] stage (CPM work list with budgets).
    SubsetsSelected,
}

impl StageKind {
    /// The header tag byte of this stage kind.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Planned => 1,
            Self::GlobalCompiled => 2,
            Self::GlobalRun => 3,
            Self::SubsetsSelected => 4,
        }
    }

    /// The stage kind of a header tag byte, if known.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Planned),
            2 => Some(Self::GlobalCompiled),
            3 => Some(Self::GlobalRun),
            4 => Some(Self::SubsetsSelected),
            _ => None,
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Planned => "planned",
            Self::GlobalCompiled => "global-compiled",
            Self::GlobalRun => "global-run",
            Self::SubsetsSelected => "subsets-selected",
        })
    }
}

/// The parsed fixed-size prefix of an archive (see [`read_header`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveHeader {
    /// Format version the archive was written with.
    pub version: u16,
    /// Stage the payload holds.
    pub stage: StageKind,
    /// FNV-1a64 digest of the producing `(program, device, config)`.
    pub config_digest: u64,
    /// Payload byte length.
    pub payload_len: u64,
}

/// Everything that can go wrong saving, loading or resuming an archive.
/// Corrupt input of any shape maps to a variant here — never a panic.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (the path is attached for context).
    Io {
        /// Path being read or written.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// The input is shorter than the structure it claims to hold.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually present.
        len: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The archive was written by an unknown format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The stage tag byte has no known [`StageKind`].
    UnknownStage {
        /// The unrecognised tag.
        tag: u8,
    },
    /// The archive holds a different stage than the caller requested.
    WrongStage {
        /// Stage the caller asked for.
        expected: StageKind,
        /// Stage the archive holds.
        found: StageKind,
    },
    /// The header declares a payload longer than this platform can even
    /// address — the length prefix is corrupt (or hostile), and no amount
    /// of further input could satisfy it.
    Oversized {
        /// Payload length the header claims.
        payload_len: u64,
    },
    /// The payload bytes do not match their stored checksum.
    ChecksumMismatch {
        /// Checksum stored in the archive.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// The header's config digest does not match the decoded payload —
    /// the header was edited independently of the body.
    DigestMismatch {
        /// Digest stored in the header.
        stored: u64,
        /// Digest recomputed from the decoded stage.
        computed: u64,
    },
    /// The archive was produced under a different `(program, device,
    /// config)` than the caller is resuming with — resuming would silently
    /// diverge, so it is refused. Rebuild the stage or pass the original
    /// configuration.
    ConfigMismatch {
        /// Digest stored in the archive.
        archive: u64,
        /// Digest of the caller's inputs.
        caller: u64,
    },
    /// The payload failed to decode (truncated, bad tags, invariant
    /// violations).
    Codec(CodecError),
    /// Bytes remain after the checksum — the archive has trailing garbage.
    TrailingBytes {
        /// Number of extra bytes.
        remaining: usize,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Truncated { needed, len } => {
                write!(f, "archive truncated: needs {needed} bytes, has {len}")
            }
            Self::BadMagic { found } => write!(f, "not a JigSaw archive (magic {found:02x?})"),
            Self::UnsupportedVersion { found } => write!(
                f,
                "archive format version {found} is not supported (this build reads \
                 {FORMAT_VERSION})"
            ),
            Self::UnknownStage { tag } => write!(f, "unknown stage tag {tag:#04x}"),
            Self::WrongStage { expected, found } => {
                write!(f, "archive holds a {found} stage, expected {expected}")
            }
            Self::Oversized { payload_len } => {
                write!(f, "header claims a {payload_len}-byte payload, beyond addressable memory")
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::DigestMismatch { stored, computed } => write!(
                f,
                "header config digest {stored:#018x} does not match the payload's \
                 {computed:#018x}"
            ),
            Self::ConfigMismatch { archive, caller } => write!(
                f,
                "archive was produced under config digest {archive:#018x} but the resume \
                 supplies {caller:#018x}; refusing to resume a mismatched configuration"
            ),
            Self::Codec(e) => write!(f, "payload decode failed: {e}"),
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the archive")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

mod sealed {
    /// The stage set is closed: archives only ever hold pipeline stages.
    pub trait Sealed {}
    impl Sealed for crate::pipeline::Planned {}
    impl Sealed for crate::pipeline::GlobalCompiled {}
    impl Sealed for crate::pipeline::GlobalRun {}
    impl Sealed for crate::pipeline::SubsetsSelected {}
}

/// A pipeline stage that can live in an archive. Sealed: exactly the four
/// resumable stages of [`JigsawPipeline`] implement it.
pub trait StageArtifact: Encode + Decode + sealed::Sealed {
    /// The stage tag this artifact is framed with.
    const KIND: StageKind;

    /// The producing inputs the archive digest covers.
    #[doc(hidden)]
    fn producing_inputs(&self) -> (&Circuit, &Device, &JigsawConfig);
}

impl StageArtifact for Planned {
    const KIND: StageKind = StageKind::Planned;

    fn producing_inputs(&self) -> (&Circuit, &Device, &JigsawConfig) {
        self.ctx().digest_inputs()
    }
}

impl StageArtifact for GlobalCompiled {
    const KIND: StageKind = StageKind::GlobalCompiled;

    fn producing_inputs(&self) -> (&Circuit, &Device, &JigsawConfig) {
        self.ctx().digest_inputs()
    }
}

impl StageArtifact for GlobalRun {
    const KIND: StageKind = StageKind::GlobalRun;

    fn producing_inputs(&self) -> (&Circuit, &Device, &JigsawConfig) {
        self.ctx().digest_inputs()
    }
}

impl StageArtifact for SubsetsSelected {
    const KIND: StageKind = StageKind::SubsetsSelected;

    fn producing_inputs(&self) -> (&Circuit, &Device, &JigsawConfig) {
        self.ctx().digest_inputs()
    }
}

/// FNV-1a64 digest of a producing configuration: the concatenated
/// encodings of the program, the device and the config. Any semantic
/// change — one gate, one calibration value, one knob — changes it.
#[must_use]
pub fn config_digest(program: &Circuit, device: &Device, config: &JigsawConfig) -> u64 {
    let mut w = jigsaw_pmf::codec::Writer::new();
    program.encode(&mut w);
    device.encode(&mut w);
    config.encode(&mut w);
    codec::fnv1a64(w.as_bytes())
}

/// Frames a stage into a standalone archive byte vector.
#[must_use]
pub fn to_bytes<S: StageArtifact>(stage: &S) -> Vec<u8> {
    let payload = codec::encode_to_vec(stage);
    let (program, device, config) = stage.producing_inputs();
    let mut w = jigsaw_pmf::codec::Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(S::KIND.code());
    w.put_u64(config_digest(program, device, config));
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    w.put_u64(codec::fnv1a64(&payload));
    w.into_bytes()
}

/// Parses and validates the fixed-size archive header.
///
/// # Errors
///
/// Returns [`PersistError::Truncated`], [`PersistError::BadMagic`],
/// [`PersistError::UnsupportedVersion`] or [`PersistError::UnknownStage`].
pub fn read_header(bytes: &[u8]) -> Result<ArchiveHeader, PersistError> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated { needed: HEADER_LEN, len: bytes.len() });
    }
    let magic: [u8; 8] = field(bytes, 0)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(field(bytes, 8)?);
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let tag = bytes
        .get(10)
        .copied()
        .ok_or(PersistError::Truncated { needed: HEADER_LEN, len: bytes.len() })?;
    let stage = StageKind::from_code(tag).ok_or(PersistError::UnknownStage { tag })?;
    let config_digest = u64::from_le_bytes(field(bytes, 11)?);
    let payload_len = u64::from_le_bytes(field(bytes, 19)?);
    Ok(ArchiveHeader { version, stage, config_digest, payload_len })
}

/// Reads the `N`-byte field at offset `at`, reporting truncation as a
/// typed error (unreachable once the caller has length-checked, but this
/// decode path never panics on principle).
fn field<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], PersistError> {
    bytes
        .get(at..at.saturating_add(N))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(PersistError::Truncated { needed: at.saturating_add(N), len: bytes.len() })
}

/// Decodes a stage from a standalone archive, verifying the frame end to
/// end: magic, version, stage kind, payload checksum, and the binding
/// between the header digest and the decoded payload.
///
/// # Errors
///
/// Returns the precise [`PersistError`] for whichever check fails.
pub fn from_bytes<S: StageArtifact>(bytes: &[u8]) -> Result<S, PersistError> {
    let header = read_header(bytes)?;
    if header.stage != S::KIND {
        return Err(PersistError::WrongStage { expected: S::KIND, found: header.stage });
    }
    let payload_len = usize::try_from(header.payload_len)
        .map_err(|_| PersistError::Oversized { payload_len: header.payload_len })?;
    let total = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or(PersistError::Oversized { payload_len: header.payload_len })?;
    if bytes.len() < total {
        return Err(PersistError::Truncated { needed: total, len: bytes.len() });
    }
    if bytes.len() > total {
        return Err(PersistError::TrailingBytes { remaining: bytes.len() - total });
    }
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + payload_len)
        .ok_or(PersistError::Truncated { needed: total, len: bytes.len() })?;
    let stored = u64::from_le_bytes(field(bytes, total - 8)?);
    let computed = codec::fnv1a64(payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }
    let stage: S = codec::decode_from_slice(payload)?;
    let (program, device, config) = stage.producing_inputs();
    let body_digest = config_digest(program, device, config);
    if body_digest != header.config_digest {
        return Err(PersistError::DigestMismatch {
            stored: header.config_digest,
            computed: body_digest,
        });
    }
    Ok(stage)
}

/// Writes a stage archive to `path`, atomically: the bytes land in a
/// sibling temporary file first and are renamed into place, so a crash
/// mid-write never leaves a half-written checkpoint behind.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_stage<S: StageArtifact>(stage: &S, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let io_err = |source| PersistError::Io { path: path.to_path_buf(), source };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, to_bytes(stage))
        .map_err(|source| PersistError::Io { path: tmp.clone(), source })?;
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// Reads and fully verifies a stage archive from `path`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure or any
/// [`from_bytes`] verification error.
pub fn load_stage<S: StageArtifact>(path: impl AsRef<Path>) -> Result<S, PersistError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|source| PersistError::Io { path: path.to_path_buf(), source })?;
    from_bytes(&bytes)
}

/// [`load_stage`] that additionally **refuses a mismatched resume**: the
/// caller supplies the `(program, device, config)` it intends to continue
/// with, and an archive produced under any other configuration is rejected
/// with [`PersistError::ConfigMismatch`].
///
/// The frame is fully verified *first* (checksum, digest-to-body binding,
/// decode), so corruption reports as corruption — the config comparison
/// only runs against an archive proven intact, which is what makes
/// `ConfigMismatch` a trustworthy "wrong configuration" diagnostic rather
/// than a possible disguise for a flipped header byte.
///
/// This is the cross-process analogue of forking a stage in memory: on
/// success, replaying the downstream stages is bit-identical to having
/// never left the process.
///
/// # Errors
///
/// Returns [`PersistError::ConfigMismatch`] on a digest mismatch, or any
/// [`load_stage`] error.
pub fn resume_from<S: StageArtifact>(
    path: impl AsRef<Path>,
    program: &Circuit,
    device: &Device,
    config: &JigsawConfig,
) -> Result<S, PersistError> {
    let stage: S = load_stage(path)?;
    let caller = config_digest(program, device, config);
    let (p, d, c) = stage.producing_inputs();
    let archive = config_digest(p, d, c);
    if archive != caller {
        return Err(PersistError::ConfigMismatch { archive, caller });
    }
    Ok(stage)
}

/// The facade of the persistence layer on the pipeline entry point.
impl JigsawPipeline {
    /// Saves a stage checkpoint to `path` (see [`save_stage`]).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn save_stage<S: StageArtifact>(
        stage: &S,
        path: impl AsRef<Path>,
    ) -> Result<(), PersistError> {
        save_stage(stage, path)
    }

    /// Resumes a stage checkpoint from `path`, refusing archives produced
    /// under a different `(program, device, config)` (see [`resume_from`]).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::ConfigMismatch`] on a mismatched resume, or
    /// any verification/IO error of [`load_stage`].
    pub fn resume_from<S: StageArtifact>(
        path: impl AsRef<Path>,
        program: &Circuit,
        device: &Device,
        config: &JigsawConfig,
    ) -> Result<S, PersistError> {
        resume_from(path, program, device, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_circuit::bench;
    use jigsaw_compiler::CompilerOptions;

    fn quick_config(trials: u64) -> JigsawConfig {
        JigsawConfig {
            compiler: CompilerOptions { max_seeds: 2, ..CompilerOptions::default() },
            ..JigsawConfig::jigsaw(trials)
        }
    }

    fn small_global_run() -> (Device, jigsaw_circuit::bench::Benchmark, JigsawConfig, GlobalRun) {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let config = quick_config(600).with_seed(11);
        let run = JigsawPipeline::plan(b.circuit(), &device, &config).compile_global().run_global();
        (device, b, config, run)
    }

    #[test]
    fn every_stage_kind_round_trips() {
        let device = Device::toronto();
        let b = bench::ghz(5);
        let config = quick_config(600).with_seed(3);
        let planned = JigsawPipeline::plan(b.circuit(), &device, &config);
        let back: Planned = from_bytes(&to_bytes(&planned)).unwrap();
        assert_eq!(back, planned);

        let compiled = planned.compile_global();
        let back: GlobalCompiled = from_bytes(&to_bytes(&compiled)).unwrap();
        assert_eq!(back, compiled);

        let run = compiled.run_global();
        let back: GlobalRun = from_bytes(&to_bytes(&run)).unwrap();
        assert_eq!(back, run);

        let selected = run.select_subsets();
        let back: SubsetsSelected = from_bytes(&to_bytes(&selected)).unwrap();
        assert_eq!(back, selected);
    }

    #[test]
    fn archives_are_canonical_re_encodes() {
        let (_, _, _, run) = small_global_run();
        let bytes = to_bytes(&run);
        let decoded: GlobalRun = from_bytes(&bytes).unwrap();
        assert_eq!(to_bytes(&decoded), bytes, "decode → encode must be byte-identical");
    }

    #[test]
    fn wrong_stage_is_refused_by_type() {
        let (_, _, _, run) = small_global_run();
        let bytes = to_bytes(&run);
        let err = from_bytes::<Planned>(&bytes).unwrap_err();
        assert!(matches!(
            err,
            PersistError::WrongStage { expected: StageKind::Planned, found: StageKind::GlobalRun }
        ));
    }

    #[test]
    fn resume_refuses_a_mismatched_config() {
        let (device, b, config, run) = small_global_run();
        let dir = std::env::temp_dir().join("jigsaw-persist-test-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jigsaw");
        save_stage(&run, &path).unwrap();

        let ok: GlobalRun = resume_from(&path, b.circuit(), &device, &config).unwrap();
        assert_eq!(ok, run);

        let other = config.clone().with_seed(12);
        let err = resume_from::<GlobalRun>(&path, b.circuit(), &device, &other).unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_reports_corruption_as_corruption_not_config_mismatch() {
        // A flipped header-digest byte means the file is damaged, not that
        // the caller brought the wrong config — resume_from must verify
        // the frame before comparing configurations.
        let (device, b, config, run) = small_global_run();
        let dir = std::env::temp_dir().join("jigsaw-persist-test-corrupt-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jigsaw");
        let mut bytes = to_bytes(&run);
        bytes[12] ^= 0x01; // inside the header's config-digest field
        std::fs::write(&path, bytes).unwrap();
        let err = resume_from::<GlobalRun>(&path, b.circuit(), &device, &config).unwrap_err();
        assert!(matches!(err, PersistError::DigestMismatch { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_stage::<GlobalRun>("/nonexistent/jigsaw.ckpt").unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
    }

    #[test]
    fn header_checks_are_ordered_and_typed() {
        let (_, _, _, run) = small_global_run();
        let bytes = to_bytes(&run);

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(from_bytes::<GlobalRun>(&bad), Err(PersistError::BadMagic { .. })));

        let mut bad = bytes.clone();
        bad[8] = 0xFF; // version
        assert!(matches!(
            from_bytes::<GlobalRun>(&bad),
            Err(PersistError::UnsupportedVersion { found: 0xFF })
        ));

        let mut bad = bytes.clone();
        bad[10] = 0x7F; // stage tag
        assert!(matches!(
            from_bytes::<GlobalRun>(&bad),
            Err(PersistError::UnknownStage { tag: 0x7F })
        ));

        let mut bad = bytes.clone();
        bad[11] ^= 0x01; // header digest no longer matches the body
        assert!(matches!(from_bytes::<GlobalRun>(&bad), Err(PersistError::DigestMismatch { .. })));

        let mut bad = bytes.clone();
        bad.push(0); // trailing garbage
        assert!(matches!(
            from_bytes::<GlobalRun>(&bad),
            Err(PersistError::TrailingBytes { remaining: 1 })
        ));

        // Regression: a length prefix beyond addressable memory used to
        // disguise itself as `Truncated { needed: usize::MAX }`; it is its
        // own typed corruption now.
        let mut bad = bytes.clone();
        bad[19..27].copy_from_slice(&u64::MAX.to_le_bytes()); // payload length
        assert!(matches!(
            from_bytes::<GlobalRun>(&bad),
            Err(PersistError::Oversized { payload_len: u64::MAX })
        ));
    }
}
