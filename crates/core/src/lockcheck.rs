//! Lock-order discipline: named mutex/condvar wrappers with an optional
//! runtime acquisition-order checker.
//!
//! Every mutex in the pipeline's concurrent surfaces (`sched`,
//! `telemetry`, and the server's connection queue and stage cache) is a
//! [`Mutex`] from this module, constructed with a stable name. The
//! workspace declares a total acquisition order over those names
//! (ascending rank — see `docs/ANALYSIS.md` and the static table in
//! `jigsaw-analyze`):
//!
//! | rank | lock |
//! |-----:|------|
//! | 5 | `dist.queue` |
//! | 10 | `server.conn_queue` |
//! | 20 | `cache.inner` |
//! | 30 | `sched.state` |
//! | 40 | `sched.cell.slot` |
//! | 50 | `cache.flight.slot` |
//! | 60 | `telemetry.counters` |
//! | 61 | `telemetry.histograms` |
//!
//! With the `lockcheck` feature **off** (the default), the wrappers are
//! thin newtypes over [`std::sync::Mutex`]/[`std::sync::Condvar`]: no
//! bookkeeping, no atomics, nothing on the lock path beyond the std call.
//!
//! With `lockcheck` **on**, every acquisition records an edge
//! `held → acquired` (with both `#[track_caller]` call sites) in a
//! process-global lock-order graph and keeps a per-thread stack of live
//! guards. The first acquisition that closes a cycle in that graph — the
//! classic ABBA deadlock shape — panics immediately, naming both
//! acquisition sites, instead of deadlocking some unlucky future run.
//! CI exercises the concurrency suites once with the feature enabled.
//!
//! Poisoning: [`Mutex::lock`] is infallible and panics (naming the lock)
//! if the mutex is poisoned. Job and connection panics are contained by
//! `catch_unwind` fault barriers *outside* every critical section, so a
//! poisoned lock here means a bug in this workspace's own locking code,
//! not a recoverable condition — there is no caller that could do
//! anything sensible with a `PoisonError`.

pub use imp::{Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "lockcheck"))]
mod imp {
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{self, WaitTimeoutResult};
    use std::time::Duration;

    /// A named mutex. With `lockcheck` off this is a transparent wrapper
    /// over [`std::sync::Mutex`]; the name only serves panic messages.
    pub struct Mutex<T> {
        name: &'static str,
        inner: sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value` under the lock named `name` (the name must match
        /// the declared workspace lock-order table).
        pub const fn new(name: &'static str, value: T) -> Self {
            Self { name, inner: sync::Mutex::new(value) }
        }

        /// Acquires the lock. Infallible: poisoning panics with the lock
        /// name (see the module docs for why poisoning is unrecoverable
        /// here).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            match self.inner.lock() {
                Ok(inner) => MutexGuard { inner },
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock `{}` poisoned", self.name),
            }
        }

        /// The lock's declared name.
        pub const fn name(&self) -> &'static str {
            self.name
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").field("name", &self.name).field("inner", &self.inner).finish()
        }
    }

    /// Guard returned by [`Mutex::lock`].
    pub struct MutexGuard<'a, T> {
        inner: sync::MutexGuard<'a, T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Condvar paired with a [`Mutex`] from this module.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: sync::Condvar,
    }

    impl Condvar {
        /// New condvar.
        #[must_use]
        pub const fn new() -> Self {
            Self { inner: sync::Condvar::new() }
        }

        /// Blocks until notified. Infallible; poisoning panics.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            match self.inner.wait(guard.inner) {
                Ok(inner) => MutexGuard { inner },
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock poisoned during condvar wait"),
            }
        }

        /// Blocks until notified or `dur` elapses. Infallible; poisoning
        /// panics.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            match self.inner.wait_timeout(guard.inner, dur) {
                Ok((inner, timeout)) => (MutexGuard { inner }, timeout),
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock poisoned during condvar wait"),
            }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}

#[cfg(feature = "lockcheck")]
mod imp {
    use std::cell::RefCell;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::{self, OnceLock, WaitTimeoutResult};
    use std::time::Duration;

    /// One observed ordering: `from` was held when `to` was acquired,
    /// with the call sites of both acquisitions.
    #[derive(Clone, Copy)]
    struct Edge {
        from: &'static str,
        from_site: &'static Location<'static>,
        to: &'static str,
        to_site: &'static Location<'static>,
    }

    /// The process-global lock-order graph. A plain edge list: the
    /// workspace has well under a dozen named locks, so linear scans beat
    /// any map — and keep this module free of hash-map iteration-order
    /// concerns.
    fn graph() -> &'static sync::Mutex<Vec<Edge>> {
        static GRAPH: OnceLock<sync::Mutex<Vec<Edge>>> = OnceLock::new();
        GRAPH.get_or_init(|| sync::Mutex::new(Vec::new()))
    }

    thread_local! {
        /// Stack of locks the current thread holds, in acquisition order.
        static HELD: RefCell<Vec<(&'static str, &'static Location<'static>)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Whether the graph (plus the candidate edge) contains a path
    /// `from → … → to`.
    fn reachable(edges: &[Edge], from: &'static str, to: &'static str) -> bool {
        if from == to {
            return true;
        }
        let mut visited: Vec<&'static str> = vec![from];
        let mut frontier = vec![from];
        while let Some(node) = frontier.pop() {
            for e in edges.iter().filter(|e| e.from == node) {
                if e.to == to {
                    return true;
                }
                if !visited.contains(&e.to) {
                    visited.push(e.to);
                    frontier.push(e.to);
                }
            }
        }
        false
    }

    /// Records `held → acquiring` edges for every lock on the calling
    /// thread's stack and panics if one of them closes a cycle.
    ///
    /// The panic is raised only after the graph guard is released, so a
    /// detected cycle never poisons the checker itself (a test can catch
    /// the panic and the process keeps checking).
    fn before_acquire(acquiring: &'static str, site: &'static Location<'static>) {
        let held: Vec<(&'static str, &'static Location<'static>)> =
            HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let mut cycle: Option<String> = None;
        {
            let mut edges = match graph().lock() {
                Ok(g) => g,
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lockcheck graph poisoned"),
            };
            for (from, from_site) in held {
                if from == acquiring {
                    // Recursive acquisition of the same named lock would
                    // deadlock std::sync::Mutex outright; report it as a
                    // self-cycle.
                    cycle = Some(format!(
                        "lock-order cycle: `{acquiring}` acquired at {site} while \
                         already held by this thread (acquired at {from_site})"
                    ));
                    break;
                }
                if edges.iter().any(|e| e.from == from && e.to == acquiring) {
                    continue;
                }
                if reachable(&edges, acquiring, from) {
                    let prior = edges
                        .iter()
                        .find(|e| e.from == acquiring && reachable(&edges, e.to, from))
                        .or_else(|| edges.iter().find(|e| e.from == acquiring))
                        .copied();
                    let prior_note = prior.map_or_else(String::new, |e| {
                        format!(
                            "; the reverse order was established by `{}` (acquired at {}) \
                             held while acquiring `{}` at {}",
                            e.from, e.from_site, e.to, e.to_site
                        )
                    });
                    cycle = Some(format!(
                        "lock-order cycle: acquiring `{acquiring}` at {site} while \
                         holding `{from}` (acquired at {from_site}){prior_note}"
                    ));
                    break;
                }
                edges.push(Edge { from, from_site, to: acquiring, to_site: site });
            }
        }
        if let Some(message) = cycle {
            // analyze:allow(panic-reach, a lock-order cycle is a programming bug the checker exists to fail fast on; no request data decides it)
            panic!("{message}");
        }
    }

    fn push_held(name: &'static str, site: &'static Location<'static>) {
        HELD.with(|h| h.borrow_mut().push((name, site)));
    }

    /// Pops the most recent entry for `name` (guards can drop out of
    /// stack order, so this is a positional remove, not a stack pop).
    fn pop_held(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(at) = held.iter().rposition(|(n, _)| *n == name) {
                held.remove(at);
            }
        });
    }

    /// A named mutex whose every acquisition feeds the lock-order graph.
    pub struct Mutex<T> {
        name: &'static str,
        inner: sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wraps `value` under the lock named `name` (the name must match
        /// the declared workspace lock-order table).
        pub const fn new(name: &'static str, value: T) -> Self {
            Self { name, inner: sync::Mutex::new(value) }
        }

        /// Acquires the lock, recording the acquisition in the calling
        /// thread's held-stack and the global order graph.
        ///
        /// # Panics
        ///
        /// Panics — naming both acquisition sites — when this acquisition
        /// closes a cycle in the observed lock order, and on poisoning
        /// (see the module docs).
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let site = Location::caller();
            before_acquire(self.name, site);
            let inner = match self.inner.lock() {
                Ok(inner) => inner,
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock `{}` poisoned", self.name),
            };
            push_held(self.name, site);
            MutexGuard { inner: Some(inner), name: self.name }
        }

        /// The lock's declared name.
        pub const fn name(&self) -> &'static str {
            self.name
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").field("name", &self.name).field("inner", &self.inner).finish()
        }
    }

    /// Guard returned by [`Mutex::lock`]; dropping it pops the held-stack
    /// entry.
    pub struct MutexGuard<'a, T> {
        /// `None` only transiently while a condvar wait has released the
        /// lock (the guard is consumed by value there) — a live guard in
        /// user hands always holds `Some`.
        inner: Option<sync::MutexGuard<'a, T>>,
        name: &'static str,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            match self.inner.as_ref() {
                Some(inner) => inner,
                None => unreachable!("guard used after condvar consumed it"),
            }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            match self.inner.as_mut() {
                Some(inner) => inner,
                None => unreachable!("guard used after condvar consumed it"),
            }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                pop_held(self.name);
            }
        }
    }

    /// Condvar paired with a [`Mutex`] from this module. Waiting releases
    /// the lock, so the held-stack entry is popped for the duration of
    /// the wait and re-pushed (at the wait site) on wakeup.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: sync::Condvar,
    }

    impl Condvar {
        /// New condvar.
        #[must_use]
        pub const fn new() -> Self {
            Self { inner: sync::Condvar::new() }
        }

        /// Blocks until notified.
        ///
        /// # Panics
        ///
        /// Panics on poisoning, and on a lock-order cycle at re-acquisition.
        #[track_caller]
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let site = Location::caller();
            let name = guard.name;
            let Some(inner) = guard.inner.take() else {
                // analyze:allow(panic-reach, the guard's inner slot is only taken here; reuse cannot happen)
                unreachable!("guard used after condvar consumed it")
            };
            pop_held(name);
            drop(guard);
            let inner = match self.inner.wait(inner) {
                Ok(inner) => inner,
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock `{name}` poisoned during condvar wait"),
            };
            before_acquire(name, site);
            push_held(name, site);
            MutexGuard { inner: Some(inner), name }
        }

        /// Blocks until notified or `dur` elapses.
        ///
        /// # Panics
        ///
        /// Panics on poisoning, and on a lock-order cycle at re-acquisition.
        #[track_caller]
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            let site = Location::caller();
            let name = guard.name;
            let Some(inner) = guard.inner.take() else {
                // analyze:allow(panic-reach, the guard's inner slot is only taken here; reuse cannot happen)
                unreachable!("guard used after condvar consumed it")
            };
            pop_held(name);
            drop(guard);
            let (inner, timeout) = match self.inner.wait_timeout(inner, dur) {
                Ok(pair) => pair,
                // analyze:allow(panic-reach, poisoning means a sibling thread already panicked; fail-fast is the lockcheck contract)
                Err(_) => panic!("lock `{name}` poisoned during condvar wait"),
            };
            before_acquire(name, site);
            push_held(name, site);
            (MutexGuard { inner: Some(inner), name }, timeout)
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}
