//! Trial-budget estimation (paper Appendix A.2).
//!
//! How many trials does a CPM need before every possible outcome has been
//! seen at least once with confidence `P`? Assuming a near-uniform worst
//! case over `N = 2^s` outcomes:
//!
//! ```text
//! t(one outcome)  = −ln(1 − P) · N          (Equation 8)
//! t(all outcomes) = −ln(1 − P) · N²         (Equation 9)
//! ```
//!
//! For the default subset size 2 (`N = 4`), ≈150 trials suffice at 99.99%
//! confidence — which is why splitting half the budget across `n` CPMs is
//! comfortable at realistic trial counts.

/// Probability that a specific outcome among `n_outcomes` equally-likely
/// ones has appeared at least once after `trials` trials (Equation 6).
///
/// # Panics
///
/// Panics if `n_outcomes == 0`.
#[must_use]
pub fn coverage_probability(n_outcomes: u64, trials: u64) -> f64 {
    assert!(n_outcomes > 0, "need at least one outcome");
    let p = 1.0 / n_outcomes as f64;
    1.0 - (1.0 - p).powi(trials.min(i32::MAX as u64) as i32)
}

/// Trials needed to see one given outcome at least once with confidence
/// `confidence` (Equation 8).
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
#[must_use]
pub fn trials_for_outcome(n_outcomes: u64, confidence: f64) -> u64 {
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must lie in (0, 1)");
    (-(1.0 - confidence).ln() * n_outcomes as f64).ceil() as u64
}

/// Trials needed to see *every* outcome at least once with per-outcome
/// confidence `confidence` (Equation 9).
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
#[must_use]
pub fn trials_for_full_coverage(n_outcomes: u64, confidence: f64) -> u64 {
    trials_for_outcome(n_outcomes, confidence).saturating_mul(n_outcomes)
}

/// Trials a size-`s` CPM needs for full outcome coverage at `confidence`
/// (the quantity Appendix A.2 estimates for the default design).
///
/// The outcome count `2^s` saturates at [`u64::MAX`] for `s >= 63` rather
/// than overflowing: the value is used as an allocation *weight* for
/// configurations that can arrive over the wire (stabilizer-backend
/// programs go up to 256 qubits), and a decoded-but-huge subset size must
/// degrade to "effectively infinite trials wanted", never panic the
/// process (see `tests/server_protocol_fuzz.rs` for the regression).
///
/// # Panics
///
/// Panics if `confidence` is out of `(0, 1)`.
#[must_use]
pub fn cpm_trials(subset_size: usize, confidence: f64) -> u64 {
    let n_outcomes = if subset_size >= 63 { u64::MAX } else { 1u64 << subset_size };
    trials_for_full_coverage(n_outcomes, confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation6_limits() {
        assert!(coverage_probability(4, 0) < 1e-12);
        assert!(coverage_probability(4, 1_000) > 0.999_999);
        // One trial over N outcomes hits a given one with probability 1/N.
        assert!((coverage_probability(4, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_estimate_for_default_cpm() {
        // Appendix A.2: "about 150 trials ... with 99.99% probability" for
        // subset size 2.
        let t = cpm_trials(2, 0.9999);
        assert!((140..=160).contains(&t), "got {t}");
    }

    #[test]
    fn larger_subsets_need_quadratically_more() {
        let t2 = cpm_trials(2, 0.999);
        let t3 = cpm_trials(3, 0.999);
        // N doubles → N² quadruples.
        assert!((t3 as f64 / t2 as f64 - 4.0).abs() < 0.1);
    }

    #[test]
    fn estimated_trials_actually_cover() {
        let t = trials_for_outcome(16, 0.99);
        assert!(coverage_probability(16, t) >= 0.99);
    }

    #[test]
    fn jigsaw_m_sizes_stay_in_thousands() {
        // §A.2's closing claim: CPMs of sizes 2–5 need at most a few
        // thousand trials.
        for s in 2..=5 {
            assert!(cpm_trials(s, 0.9999) < 10_000, "size {s}");
        }
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_must_be_fractional() {
        let _ = trials_for_outcome(4, 1.0);
    }

    #[test]
    fn huge_subset_sizes_saturate_instead_of_overflowing() {
        // Regression: `1u64 << s` for s >= 63 used to panic (shift
        // overflow in debug); sizes up to 255 are reachable from decoded
        // configurations on wide stabilizer programs.
        let t63 = cpm_trials(63, 0.9999);
        let t255 = cpm_trials(255, 0.9999);
        assert_eq!(t63, u64::MAX, "saturated weight");
        assert_eq!(t255, u64::MAX, "saturated weight");
        assert!(cpm_trials(30, 0.9999) > cpm_trials(10, 0.9999), "still monotone below the cap");
    }
}
