//! The threaded job server: accept loop, per-connection frame handlers,
//! and the job execution path that feeds the stage cache.
//!
//! One thread accepts; each connection gets its own handler thread running
//! a frame loop. Submissions resolve through [`StageCache::get_or_compute`]
//! so concurrent identical jobs coalesce on one pipeline execution, and a
//! response is always the same bytes `run_jigsaw` would produce solo — the
//! staged pipeline is deterministic at every thread count, and the encoded
//! `JigsawResult` excludes wall clocks.
//!
//! Shutdown is cooperative: a [`FrameKind::Shutdown`] frame (or
//! [`ServerHandle::shutdown`]) raises a flag, a self-connection unblocks
//! the acceptor, handler read loops notice the flag at their next read
//! timeout, and every thread is joined before the listener drops.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jigsaw_core::persist;
use jigsaw_core::pipeline::JigsawPipeline;
use jigsaw_core::telemetry::{self, Counter};
use jigsaw_core::StageKind;
use jigsaw_pmf::codec::encode_to_vec;

use crate::cache::{JobArtifacts, StageCache};
use crate::protocol::{
    decode_submit, ErrorCode, Frame, FrameKind, JobRejection, JobRequest, ProtocolError,
};

/// How often an idle handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port.
    pub addr: String,
    /// Ready-entry capacity of the stage cache.
    pub capacity: usize,
    /// Directory eviction archives spill into.
    pub spill_dir: PathBuf,
}

impl ServerConfig {
    /// A loopback server on a free port with the given spill directory
    /// and a default capacity of 8 ready entries.
    #[must_use]
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        Self { addr: "127.0.0.1:0".to_owned(), capacity: 8, spill_dir: spill_dir.into() }
    }

    /// Overrides the cache capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for every connection handler to finish, and
    /// returns once the process holds no server threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor: it only re-checks the flag per accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

/// Counters the serving layer feeds (the cache registers its own).
#[derive(Clone)]
struct ServerMetrics {
    jobs: Counter,
}

impl ServerMetrics {
    fn register() -> Self {
        Self { jobs: telemetry::global().counter("jigsaw_server_jobs_total", &[]) }
    }
}

/// Binds and starts a job server.
///
/// # Errors
///
/// Propagates binding and spill-directory I/O failures.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = Arc::new(StageCache::new(config.capacity, &config.spill_dir)?);
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = ServerMetrics::register();

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let cache = Arc::clone(&cache);
                        let shutdown = Arc::clone(&shutdown);
                        let metrics = metrics.clone();
                        handlers.push(std::thread::spawn(move || {
                            handle_connection(stream, &cache, &shutdown, &metrics, addr);
                        }));
                    }
                    Err(_) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            for handler in handlers {
                let _ = handler.join();
            }
        })
    };

    Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor) })
}

/// One connection's frame loop.
fn handle_connection(
    mut stream: TcpStream,
    cache: &StageCache,
    shutdown: &Arc<AtomicBool>,
    metrics: &ServerMetrics,
    self_addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let stop = || shutdown.load(Ordering::SeqCst);
    loop {
        let frame = match Frame::read_interruptible(&mut stream, &stop) {
            Ok(Some(frame)) => frame,
            // Clean EOF, or shutdown while idle: the connection is done.
            Ok(None) => break,
            Err(error) => {
                // Malformed framing leaves the stream position unknown:
                // report and close rather than resynchronise.
                let rejection = JobRejection::new(ErrorCode::Malformed, error.to_string());
                let reply = Frame {
                    kind: FrameKind::JobError,
                    digest: 0,
                    payload: encode_to_vec(&rejection),
                };
                let _ = reply.write_to(&mut stream);
                break;
            }
        };
        let keep_going = match frame.kind {
            FrameKind::SubmitJob => handle_submit(&mut stream, &frame, cache, metrics),
            FrameKind::MetricsRequest => {
                let text = telemetry::global().render_text();
                Frame { kind: FrameKind::MetricsText, digest: 0, payload: text.into_bytes() }
                    .write_to(&mut stream)
                    .is_ok()
            }
            FrameKind::Shutdown => {
                let _ = Frame::empty(FrameKind::ShutdownAck).write_to(&mut stream);
                shutdown.store(true, Ordering::SeqCst);
                // Nudge the acceptor off its blocking accept.
                let _ = TcpStream::connect(self_addr);
                false
            }
            // Server-to-client kinds arriving here are a protocol misuse.
            FrameKind::JobResult
            | FrameKind::JobError
            | FrameKind::MetricsText
            | FrameKind::ShutdownAck => {
                let rejection = JobRejection::new(
                    ErrorCode::Malformed,
                    format!("unexpected client frame kind {:?}", frame.kind),
                );
                Frame { kind: FrameKind::JobError, digest: 0, payload: encode_to_vec(&rejection) }
                    .write_to(&mut stream)
                    .is_ok()
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// Resolves one submission through the cache and writes the reply frame.
/// Returns whether the connection should stay open.
fn handle_submit(
    stream: &mut TcpStream,
    frame: &Frame,
    cache: &StageCache,
    metrics: &ServerMetrics,
) -> bool {
    let request = match decode_submit(frame) {
        Ok(request) => request,
        Err(error) => {
            let code = match error {
                ProtocolError::DigestMismatch { .. } => ErrorCode::DigestMismatch,
                _ => ErrorCode::Malformed,
            };
            let rejection = JobRejection::new(code, error.to_string());
            return Frame {
                kind: FrameKind::JobError,
                digest: frame.digest,
                payload: encode_to_vec(&rejection),
            }
            .write_to(stream)
            .is_ok();
        }
    };
    metrics.jobs.inc();
    let digest = frame.digest;
    let (result, _outcome) = cache.get_or_compute(
        digest,
        || compute_job(&request),
        |path| rehydrate_job(path, &request),
    );
    let reply = match result {
        Ok(response) => Frame { kind: FrameKind::JobResult, digest, payload: (*response).clone() },
        Err(rejection) => {
            Frame { kind: FrameKind::JobError, digest, payload: encode_to_vec(&rejection) }
        }
    };
    reply.write_to(stream).is_ok()
}

/// Runs the full pipeline for a request, capturing the hinted stage as the
/// eviction checkpoint along the way. Identical to `run_jigsaw` in result
/// bytes: the same staged chain, and the result encoding excludes wall
/// clocks.
fn compute_job(request: &JobRequest) -> Result<JobArtifacts, JobRejection> {
    let planned = JigsawPipeline::try_plan(&request.program, &request.device, &request.config)
        .map_err(|e| JobRejection::new(ErrorCode::PlanRejected, e.to_string()))?;
    let (checkpoint, result) = match request.hint {
        StageKind::Planned => {
            let checkpoint = persist::to_bytes(&planned);
            let result =
                planned.compile_global().run_global().select_subsets().run_cpms().reconstruct();
            (checkpoint, result)
        }
        StageKind::GlobalCompiled => {
            let stage = planned.compile_global();
            let checkpoint = persist::to_bytes(&stage);
            (checkpoint, stage.run_global().select_subsets().run_cpms().reconstruct())
        }
        StageKind::GlobalRun => {
            let stage = planned.compile_global().run_global();
            let checkpoint = persist::to_bytes(&stage);
            (checkpoint, stage.select_subsets().run_cpms().reconstruct())
        }
        StageKind::SubsetsSelected => {
            let stage = planned.compile_global().run_global().select_subsets();
            let checkpoint = persist::to_bytes(&stage);
            (checkpoint, stage.run_cpms().reconstruct())
        }
    };
    Ok((encode_to_vec(&result), checkpoint))
}

/// Replays a job from its eviction archive: resume the spilled stage
/// (digest-checked against the request) and run only the downstream
/// stages. With a `GlobalRun`-or-later checkpoint this performs zero
/// global compiles.
fn rehydrate_job(
    path: &std::path::Path,
    request: &JobRequest,
) -> Result<JobArtifacts, JobRejection> {
    let reject =
        |e: persist::PersistError| JobRejection::new(ErrorCode::ComputeFailed, e.to_string());
    let bytes = std::fs::read(path).map_err(|e| {
        JobRejection::new(ErrorCode::ComputeFailed, format!("spill archive unreadable: {e}"))
    })?;
    let header = persist::read_header(&bytes).map_err(reject)?;
    let (program, device, config) = (&request.program, &request.device, &request.config);
    let result = match header.stage {
        StageKind::Planned => {
            let stage: jigsaw_core::pipeline::Planned =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.compile_global().run_global().select_subsets().run_cpms().reconstruct()
        }
        StageKind::GlobalCompiled => {
            let stage: jigsaw_core::pipeline::GlobalCompiled =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.run_global().select_subsets().run_cpms().reconstruct()
        }
        StageKind::GlobalRun => {
            let stage: jigsaw_core::pipeline::GlobalRun =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.select_subsets().run_cpms().reconstruct()
        }
        StageKind::SubsetsSelected => {
            let stage: jigsaw_core::pipeline::SubsetsSelected =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.run_cpms().reconstruct()
        }
    };
    Ok((encode_to_vec(&result), bytes))
}
