//! The threaded job server: accept loop, a *fixed* pool of connection
//! handlers fed by a bounded queue, and the job execution path that hands
//! compute to the multi-job stage scheduler through the stage cache.
//!
//! One thread accepts and enqueues connections; a fixed pool of
//! [`ServerConfig::handlers`] threads drains the queue and runs the frame
//! loop — the server's thread count is a constant, not a function of how
//! many peers connect. When the queue already holds
//! [`ServerConfig::queue_depth`] connections the acceptor refuses the
//! newcomer with a typed [`ErrorCode::Overloaded`] frame and closes it:
//! saturation is an explicit, machine-readable condition, never an
//! unbounded thread spawn or a silent hang.
//!
//! Submissions resolve through [`StageCache::get_or_compute`], so
//! concurrent identical jobs still coalesce on one computation — but the
//! computation itself is no longer run on the connection thread. It is
//! submitted to the process-wide [`Scheduler`] in the lane the request's
//! priority byte names, where its stages interleave with every other
//! admitted job and its fan-out stages batch with digest-adjacent peers
//! (see `jigsaw_core::sched`). A response is always the same bytes
//! `run_jigsaw` would produce solo — the staged pipeline is deterministic
//! at every thread count and the encoded `JigsawResult` excludes wall
//! clocks — regardless of lane, interleaving or batching.
//!
//! Shutdown is cooperative: a [`FrameKind::Shutdown`] frame (or
//! [`ServerHandle::shutdown`]) raises a flag, a self-connection unblocks
//! the acceptor, handler read loops notice the flag at their next read
//! timeout, every thread is joined, and the scheduler drains before the
//! listener drops.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jigsaw_core::dist::ShardRequest;
use jigsaw_core::lockcheck::{Condvar, Mutex};
use jigsaw_core::persist;
use jigsaw_core::sched::{JobError, SchedConfig, Scheduler};
use jigsaw_core::telemetry::{self, Counter};
use jigsaw_core::StageKind;
use jigsaw_pmf::codec::encode_to_vec;
use jigsaw_pmf::ShardPartial;

use crate::cache::{JobArtifacts, StageCache};
use crate::protocol::{
    decode_shard, decode_submit, ErrorCode, Frame, FrameKind, JobRejection, JobRequest,
    ProtocolError,
};

/// How often an idle handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free port.
    pub addr: String,
    /// Ready-entry capacity of the stage cache.
    pub capacity: usize,
    /// Directory eviction archives spill into.
    pub spill_dir: PathBuf,
    /// Fixed number of connection-handler threads (min 1).
    pub handlers: usize,
    /// Accepted connections waiting for a free handler beyond this bound
    /// are refused with [`ErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Stage-scheduler configuration (worker pool, admission capacity,
    /// cross-job batching).
    pub sched: SchedConfig,
    /// Fault-injection knob for the distributed-sweep suites: the process
    /// exits (code 86) upon receiving its N-th `SubmitShard` frame,
    /// *before* replying — simulating a worker killed mid-shard. `None`
    /// (the default, and the only sane production value) never dies.
    pub die_after_shards: Option<u64>,
}

impl ServerConfig {
    /// A loopback server on a free port with the given spill directory,
    /// a default capacity of 8 ready cache entries, 8 handler threads over
    /// a 64-deep connection queue, and a default scheduler.
    #[must_use]
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            capacity: 8,
            spill_dir: spill_dir.into(),
            handlers: 8,
            queue_depth: 64,
            sched: SchedConfig::default(),
            die_after_shards: None,
        }
    }

    /// Overrides the cache capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the handler-pool size.
    #[must_use]
    pub fn with_handlers(mut self, handlers: usize) -> Self {
        self.handlers = handlers;
        self
    }

    /// Overrides the pending-connection queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Overrides the scheduler configuration.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Arms the fault-injection knob: die on the `n`-th `SubmitShard`.
    #[must_use]
    pub fn with_die_after_shards(mut self, n: u64) -> Self {
        self.die_after_shards = Some(n);
        self
    }
}

/// The bounded queue of accepted-but-unhandled connections.
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
}

impl ConnQueue {
    fn new(depth: usize) -> Self {
        Self {
            pending: Mutex::new("server.conn_queue", VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues a connection; a full queue hands the stream back so the
    /// caller can refuse it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut pending = self.pending.lock();
        if pending.len() >= self.depth {
            return Err(stream);
        }
        pending.push_back(stream);
        drop(pending);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next connection, or `None` once `shutdown` is set and
    /// the queue is drained.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut pending = self.pending.lock();
        loop {
            if let Some(stream) = pending.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self.ready.wait_timeout(pending, POLL_INTERVAL);
            pending = guard;
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    conns: Arc<ConnQueue>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for every connection handler and in-flight
    /// job to finish, and returns once the process holds no server
    /// threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until a peer shuts the server down (a [`FrameKind::Shutdown`]
    /// frame), then joins every thread. The worker binary's main loop.
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor: it only re-checks the flag per accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.conns.ready.notify_all();
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        // The scheduler (shared by the handlers) drops with its last Arc,
        // joining its workers after any in-flight jobs complete.
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.handlers.is_empty() {
            self.stop();
        }
    }
}

/// Shard-frame fault injection shared by the handler pool: counts
/// `SubmitShard` arrivals so [`ServerConfig::die_after_shards`] can kill
/// the process on the configured one.
struct FaultPlan {
    shards_seen: AtomicU64,
    die_after_shards: Option<u64>,
}

/// Counters the serving layer feeds (the cache and scheduler register
/// their own).
#[derive(Clone)]
struct ServerMetrics {
    jobs: Counter,
    refused: Counter,
}

impl ServerMetrics {
    fn register() -> Self {
        Self {
            jobs: telemetry::global().counter("jigsaw_server_jobs_total", &[]),
            refused: telemetry::global().counter("jigsaw_server_overloaded_total", &[]),
        }
    }
}

/// Binds and starts a job server.
///
/// # Errors
///
/// Propagates binding and spill-directory I/O failures.
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = Arc::new(StageCache::new(config.capacity, &config.spill_dir)?);
    let scheduler = Arc::new(Scheduler::new(config.sched.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(ConnQueue::new(config.queue_depth));
    let metrics = ServerMetrics::register();
    let faults = Arc::new(FaultPlan {
        shards_seen: AtomicU64::new(0),
        die_after_shards: config.die_after_shards,
    });

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        let metrics = metrics.clone();
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Err(mut refused) = conns.push(stream) {
                        metrics.refused.inc();
                        refuse_connection(&mut refused);
                    }
                }
                Err(_) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        })
    };

    let handlers = (0..config.handlers.max(1))
        .map(|_| {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let cache = Arc::clone(&cache);
            let scheduler = Arc::clone(&scheduler);
            let metrics = metrics.clone();
            let faults = Arc::clone(&faults);
            std::thread::spawn(move || {
                while let Some(stream) = conns.pop(&shutdown) {
                    handle_connection(
                        stream, &cache, &scheduler, &shutdown, &metrics, &faults, addr,
                    );
                }
            })
        })
        .collect();

    Ok(ServerHandle { addr, shutdown, conns, acceptor: Some(acceptor), handlers })
}

/// Writes the typed overload refusal to a connection the queue cannot
/// admit, then drops it.
fn refuse_connection(stream: &mut TcpStream) {
    let rejection =
        JobRejection::new(ErrorCode::Overloaded, "server connection queue is full; retry later");
    let frame = Frame { kind: FrameKind::JobError, digest: 0, payload: encode_to_vec(&rejection) };
    let _ = frame.write_to(stream);
}

/// One connection's frame loop.
fn handle_connection(
    mut stream: TcpStream,
    cache: &StageCache,
    scheduler: &Scheduler,
    shutdown: &Arc<AtomicBool>,
    metrics: &ServerMetrics,
    faults: &FaultPlan,
    self_addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let stop = || shutdown.load(Ordering::SeqCst);
    loop {
        let frame = match Frame::read_interruptible(&mut stream, &stop) {
            Ok(Some(frame)) => frame,
            // Clean EOF, or shutdown while idle: the connection is done.
            Ok(None) => break,
            Err(error) => {
                // Malformed framing leaves the stream position unknown:
                // report and close rather than resynchronise.
                let rejection = JobRejection::new(ErrorCode::Malformed, error.to_string());
                let reply = Frame {
                    kind: FrameKind::JobError,
                    digest: 0,
                    payload: encode_to_vec(&rejection),
                };
                let _ = reply.write_to(&mut stream);
                break;
            }
        };
        let keep_going = match frame.kind {
            FrameKind::SubmitJob => handle_submit(&mut stream, &frame, cache, scheduler, metrics),
            FrameKind::SubmitShard => handle_shard(&mut stream, &frame, scheduler, faults),
            FrameKind::MetricsRequest => {
                let text = telemetry::global().render_text();
                Frame { kind: FrameKind::MetricsText, digest: 0, payload: text.into_bytes() }
                    .write_to(&mut stream)
                    .is_ok()
            }
            FrameKind::Shutdown => {
                let _ = Frame::empty(FrameKind::ShutdownAck).write_to(&mut stream);
                shutdown.store(true, Ordering::SeqCst);
                // Nudge the acceptor off its blocking accept.
                let _ = TcpStream::connect(self_addr);
                false
            }
            // Server-to-client kinds arriving here are a protocol misuse.
            FrameKind::JobResult
            | FrameKind::JobError
            | FrameKind::MetricsText
            | FrameKind::ShutdownAck
            | FrameKind::ShardResult
            | FrameKind::ShardError => {
                let rejection = JobRejection::new(
                    ErrorCode::Malformed,
                    format!("unexpected client frame kind {:?}", frame.kind),
                );
                Frame { kind: FrameKind::JobError, digest: 0, payload: encode_to_vec(&rejection) }
                    .write_to(&mut stream)
                    .is_ok()
            }
        };
        if !keep_going {
            break;
        }
    }
}

/// Resolves one submission through the cache and writes the reply frame.
/// Returns whether the connection should stay open.
fn handle_submit(
    stream: &mut TcpStream,
    frame: &Frame,
    cache: &StageCache,
    scheduler: &Scheduler,
    metrics: &ServerMetrics,
) -> bool {
    let request = match decode_submit(frame) {
        Ok(request) => request,
        Err(error) => {
            let code = match error {
                ProtocolError::DigestMismatch { .. } => ErrorCode::DigestMismatch,
                _ => ErrorCode::Malformed,
            };
            let rejection = JobRejection::new(code, error.to_string());
            return Frame {
                kind: FrameKind::JobError,
                digest: frame.digest,
                payload: encode_to_vec(&rejection),
            }
            .write_to(stream)
            .is_ok();
        }
    };
    metrics.jobs.inc();
    let digest = frame.digest;
    let (result, _outcome) = cache.get_or_compute(
        digest,
        || compute_job(scheduler, &request),
        |path| rehydrate_job(path, &request),
    );
    let reply = match result {
        Ok(response) => Frame { kind: FrameKind::JobResult, digest, payload: (*response).clone() },
        Err(rejection) => {
            Frame { kind: FrameKind::JobError, digest, payload: encode_to_vec(&rejection) }
        }
    };
    reply.write_to(stream).is_ok()
}

/// Resolves one shard submission through the scheduler's priority lanes
/// and writes the reply frame. Returns whether the connection should stay
/// open.
///
/// Shards are *not* routed through the stage cache: a sweep driver never
/// re-asks for a shard it already holds, and retried shards after a worker
/// death land on a *different* process, so per-process memoisation would
/// only hide the recompute the fault suites want to observe.
fn handle_shard(
    stream: &mut TcpStream,
    frame: &Frame,
    scheduler: &Scheduler,
    faults: &FaultPlan,
) -> bool {
    let received = faults.shards_seen.fetch_add(1, Ordering::SeqCst) + 1;
    if faults.die_after_shards.is_some_and(|n| received >= n) {
        // Simulate a worker killed mid-shard: exit before any reply, so
        // the driver observes a dead connection, never an error frame.
        std::process::exit(86);
    }
    let request = match decode_shard(frame) {
        Ok(request) => request,
        Err(error) => {
            telemetry::dist_shards("error").inc();
            let code = match error {
                ProtocolError::DigestMismatch { .. } => ErrorCode::DigestMismatch,
                _ => ErrorCode::Malformed,
            };
            let rejection = JobRejection::new(code, error.to_string());
            return Frame {
                kind: FrameKind::ShardError,
                digest: frame.digest,
                payload: encode_to_vec(&rejection),
            }
            .write_to(stream)
            .is_ok();
        }
    };
    let digest = frame.digest;
    let reply = match compute_shard(scheduler, request) {
        Ok(partial) => {
            telemetry::dist_shards("ok").inc();
            Frame { kind: FrameKind::ShardResult, digest, payload: encode_to_vec(&partial) }
        }
        Err(rejection) => {
            telemetry::dist_shards("error").inc();
            Frame { kind: FrameKind::ShardError, digest, payload: encode_to_vec(&rejection) }
        }
    };
    reply.write_to(stream).is_ok()
}

/// Submits one decoded shard to the stage scheduler in its priority lane
/// and waits for the partial. The partial's bytes are what
/// `dist::execute_shard` produces in-process — per-CPM seeds are pinned
/// by index, so which worker runs the shard never shows in the result.
fn compute_shard(
    scheduler: &Scheduler,
    request: ShardRequest,
) -> Result<ShardPartial, JobRejection> {
    let ticket = scheduler
        .submit_shard(Arc::new(request.stage), request.shard, request.priority)
        .map_err(|e| reject_job(&e))?;
    ticket.wait().map_err(|e| reject_job(&e))
}

/// Maps a scheduler refusal or failure onto the wire's error codes.
fn reject_job(error: &JobError) -> JobRejection {
    let code = match error {
        JobError::Overloaded { .. } => ErrorCode::Overloaded,
        JobError::Plan(_) => ErrorCode::PlanRejected,
        JobError::Failed(_) | JobError::Shutdown => ErrorCode::ComputeFailed,
    };
    JobRejection::new(code, error.to_string())
}

/// Submits the request to the stage scheduler in its priority lane and
/// waits for the result, capturing the hinted stage as the eviction
/// checkpoint along the way. Identical to `run_jigsaw` in result bytes:
/// the scheduler preserves per-job bit-identity under interleaving and
/// batching, and the result encoding excludes wall clocks.
fn compute_job(scheduler: &Scheduler, request: &JobRequest) -> Result<JobArtifacts, JobRejection> {
    let ticket = scheduler
        .submit(
            &request.program,
            &request.device,
            &request.config,
            request.priority,
            Some(request.hint),
        )
        .map_err(|e| reject_job(&e))?;
    let output = ticket.wait().map_err(|e| reject_job(&e))?;
    let checkpoint = output.checkpoint.ok_or_else(|| {
        JobRejection::new(ErrorCode::ComputeFailed, "scheduler returned no checkpoint")
    })?;
    Ok((encode_to_vec(&output.result), checkpoint))
}

/// Replays a job from its eviction archive: resume the spilled stage
/// (digest-checked against the request) and run only the downstream
/// stages. With a `GlobalRun`-or-later checkpoint this performs zero
/// global compiles.
fn rehydrate_job(
    path: &std::path::Path,
    request: &JobRequest,
) -> Result<JobArtifacts, JobRejection> {
    let reject =
        |e: persist::PersistError| JobRejection::new(ErrorCode::ComputeFailed, e.to_string());
    let bytes = std::fs::read(path).map_err(|e| {
        JobRejection::new(ErrorCode::ComputeFailed, format!("spill archive unreadable: {e}"))
    })?;
    let header = persist::read_header(&bytes).map_err(reject)?;
    let (program, device, config) = (&request.program, &request.device, &request.config);
    let result = match header.stage {
        StageKind::Planned => {
            let stage: jigsaw_core::pipeline::Planned =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.compile_global().run_global().select_subsets().run_cpms().reconstruct()
        }
        StageKind::GlobalCompiled => {
            let stage: jigsaw_core::pipeline::GlobalCompiled =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.run_global().select_subsets().run_cpms().reconstruct()
        }
        StageKind::GlobalRun => {
            let stage: jigsaw_core::pipeline::GlobalRun =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.select_subsets().run_cpms().reconstruct()
        }
        StageKind::SubsetsSelected => {
            let stage: jigsaw_core::pipeline::SubsetsSelected =
                persist::resume_from(path, program, device, config).map_err(reject)?;
            stage.run_cpms().reconstruct()
        }
    };
    Ok((encode_to_vec(&result), bytes))
}
