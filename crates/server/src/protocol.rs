//! The job-frame wire protocol (`docs/FORMAT.md` §6).
//!
//! A connection is a sequence of *frames*, each a self-delimiting byte
//! string with the same shape as the persist archive frame: an 8-byte
//! magic, a fixed header, a length-prefixed payload and a trailing FNV-1a64
//! checksum. The payload of a job frame is encoded with the exact same
//! [`jigsaw_pmf::codec`] wire types the archives use — a program, device or
//! config crosses the network as the same bytes it would occupy on disk.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  89 4A 53 4A 0D 0A 1A 0A   ("\x89JSJ\r\n\x1a\n")
//! 8       2     protocol version (u16 LE, currently 3)
//! 10      1     frame kind tag (see FrameKind)
//! 11      8     config digest (u64 LE; 0 where not applicable)
//! 19      8     payload length N (u64 LE)
//! 27      N     payload (codec-encoded, kind-specific)
//! 27+N    8     FNV-1a64 checksum over bytes [8, 27+N)
//! ```
//!
//! The checksum covers *everything after the magic* — version, kind,
//! digest, length and payload. FNV-1a64's per-byte bijection therefore
//! guarantees any single-bit flip anywhere past the magic is caught, a
//! strictly stronger span than the archive checksum (which covers header
//! and payload separately; see `tests/server_protocol_fuzz.rs` for the
//! battery that exercises every region). Corrupt input of any shape maps
//! to a typed [`ProtocolError`], never a panic or a wrong-but-valid frame.
//!
//! The digest field binds a [`SubmitJob`](FrameKind::SubmitJob) frame to
//! its payload: the server re-derives [`config_digest`] from the decoded
//! request and refuses the frame when the two disagree
//! ([`ProtocolError::DigestMismatch`]), so a cache key can never be spoofed
//! onto a different job.

use std::fmt;
use std::io::{self, Read, Write};

use jigsaw_circuit::Circuit;
use jigsaw_core::dist::ShardRequest;
use jigsaw_core::persist::config_digest;
use jigsaw_core::sched::Priority;
use jigsaw_core::{JigsawConfig, StageKind};
use jigsaw_device::Device;
use jigsaw_pmf::codec::{
    decode_from_slice, encode_to_vec, fnv1a64, CodecError, Decode, Encode, Reader, Writer,
};

/// First eight bytes of every frame. Differs from the archive magic in one
/// byte (`J` for *jobs* where archives carry `W` for *writes*), so a frame
/// fed to the archive loader — or vice versa — fails immediately on magic,
/// not deep in a payload decode.
pub const MAGIC: [u8; 8] = *b"\x89JSJ\r\n\x1a\x0a";

/// Version this build speaks. Bump on any layout change.
///
/// **Version history.** v1: initial job frames. v2: the SubmitJob payload
/// grew a trailing scheduling-priority byte (see [`JobRequest::priority`]),
/// so a v1 `SubmitJob` payload no longer decodes — the version field exists
/// precisely to refuse it with a typed [`ProtocolError::UnsupportedVersion`]
/// instead of a payload decode error deep inside the codec. v3: the
/// distributed-sweep shard frames [`SubmitShard`](FrameKind::SubmitShard)
/// (tag 8), [`ShardResult`](FrameKind::ShardResult) (tag 9) and
/// [`ShardError`](FrameKind::ShardError) (tag 10) joined the kind space
/// (`docs/FORMAT.md` §7); a v2 peer is refused the same typed way.
pub const PROTOCOL_VERSION: u16 = 3;

/// Fixed-size frame prefix: magic + version + kind + digest + length.
pub const HEADER_LEN: usize = 8 + 2 + 1 + 8 + 8;

/// Upper bound a peer may claim for one payload (256 MiB). A length
/// prefix beyond this is rejected before any allocation happens.
pub const MAX_PAYLOAD_LEN: u64 = 1 << 28;

/// What a frame carries. Tag values are part of the wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a [`JobRequest`] payload; digest field must equal
    /// the payload's [`config_digest`].
    SubmitJob,
    /// Server → client: an encoded `JigsawResult` payload for the digest.
    JobResult,
    /// Server → client: a [`JobRejection`] payload explaining a refusal.
    JobError,
    /// Client → server: empty payload; asks for a metrics exposition.
    MetricsRequest,
    /// Server → client: UTF-8 metrics text payload.
    MetricsText,
    /// Client → server: empty payload; asks the server to stop accepting.
    Shutdown,
    /// Server → client: empty payload; shutdown acknowledged.
    ShutdownAck,
    /// Driver → worker: a [`ShardRequest`] payload; digest field must
    /// equal the payload's [`config_digest`].
    SubmitShard,
    /// Worker → driver: an encoded `ShardPartial` payload for the digest.
    ShardResult,
    /// Worker → driver: a [`JobRejection`] payload explaining a shard
    /// refusal or failure.
    ShardError,
}

impl FrameKind {
    /// The wire tag.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::SubmitJob => 1,
            Self::JobResult => 2,
            Self::JobError => 3,
            Self::MetricsRequest => 4,
            Self::MetricsText => 5,
            Self::Shutdown => 6,
            Self::ShutdownAck => 7,
            Self::SubmitShard => 8,
            Self::ShardResult => 9,
            Self::ShardError => 10,
        }
    }

    /// Parses a wire tag.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::SubmitJob),
            2 => Some(Self::JobResult),
            3 => Some(Self::JobError),
            4 => Some(Self::MetricsRequest),
            5 => Some(Self::MetricsText),
            6 => Some(Self::Shutdown),
            7 => Some(Self::ShutdownAck),
            8 => Some(Self::SubmitShard),
            9 => Some(Self::ShardResult),
            10 => Some(Self::ShardError),
            _ => None,
        }
    }
}

/// Everything that can go wrong framing or unframing. Every variant is a
/// *typed* error: hostile bytes must land here, never panic the server.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure.
    Io(io::Error),
    /// The input ended inside a frame.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        len: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The peer speaks an unknown protocol version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The kind tag has no [`FrameKind`].
    UnknownKind {
        /// The unrecognised tag.
        tag: u8,
    },
    /// The header claims a payload beyond [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The claimed length.
        payload_len: u64,
    },
    /// The trailing checksum does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum recomputed from the bytes.
        expected: u64,
        /// Checksum found on the wire.
        found: u64,
    },
    /// Input remained after the frame ended (buffer parsing only).
    TrailingBytes {
        /// Bytes left unread.
        remaining: usize,
    },
    /// The payload failed to decode as the kind's type.
    Codec(CodecError),
    /// A submit frame's digest field disagrees with the digest re-derived
    /// from its decoded payload.
    DigestMismatch {
        /// Digest the frame header claims.
        claimed: u64,
        /// Digest computed from the payload.
        computed: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport failure: {e}"),
            Self::Truncated { needed, len } => {
                write!(f, "frame truncated: needs {needed} bytes, {len} present")
            }
            Self::BadMagic { found } => write!(f, "not a job frame (magic {found:02x?})"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            Self::UnknownKind { tag } => write!(f, "unknown frame kind tag {tag:#04x}"),
            Self::Oversized { payload_len } => {
                write!(f, "header claims a {payload_len}-byte payload, over the {MAX_PAYLOAD_LEN}-byte cap")
            }
            Self::ChecksumMismatch { expected, found } => {
                write!(f, "frame checksum mismatch: computed {expected:#018x}, found {found:#018x}")
            }
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the frame")
            }
            Self::Codec(e) => write!(f, "payload decode failed: {e}"),
            Self::DigestMismatch { claimed, computed } => {
                write!(f, "digest binding violated: frame claims {claimed:#018x}, payload digests to {computed:#018x}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        Self::Codec(e)
    }
}

/// One wire frame: a kind, the digest it concerns, and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload holds.
    pub kind: FrameKind,
    /// Config digest the frame concerns (0 where not applicable).
    pub digest: u64,
    /// Kind-specific codec-encoded payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-free frame (metrics request, shutdown, acks).
    #[must_use]
    pub fn empty(kind: FrameKind) -> Self {
        Self { kind, digest: 0, payload: Vec::new() }
    }

    /// Frames a [`JobRequest`], binding the digest field to the payload.
    #[must_use]
    pub fn submit(request: &JobRequest) -> Self {
        Self {
            kind: FrameKind::SubmitJob,
            digest: request.digest(),
            payload: encode_to_vec(request),
        }
    }

    /// Frames a [`ShardRequest`], binding the digest field to the payload
    /// exactly like [`Self::submit`] does for jobs.
    #[must_use]
    pub fn submit_shard(request: &ShardRequest) -> Self {
        Self {
            kind: FrameKind::SubmitShard,
            digest: request.digest(),
            payload: encode_to_vec(request),
        }
    }

    /// Serialises the frame: header, payload, trailing checksum over
    /// everything after the magic.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.push(self.kind.code());
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let checksum = fnv1a64(out.get(8..).unwrap_or_default());
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses one frame from a buffer, requiring exact consumption.
    ///
    /// # Errors
    ///
    /// Every malformation maps to its [`ProtocolError`] variant; the
    /// checks run in frame order (length, magic, version, kind, payload
    /// cap, checksum).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProtocolError> {
        if bytes.len() < HEADER_LEN {
            return Err(ProtocolError::Truncated { needed: HEADER_LEN, len: bytes.len() });
        }
        let header = parse_header(bytes)?;
        let Some(total) = header.frame_len() else {
            return Err(ProtocolError::Oversized { payload_len: header.payload_len });
        };
        if bytes.len() < total {
            return Err(ProtocolError::Truncated { needed: total, len: bytes.len() });
        }
        if bytes.len() > total {
            return Err(ProtocolError::TrailingBytes { remaining: bytes.len() - total });
        }
        let payload_end = total - 8;
        let found = u64::from_le_bytes(field(bytes, payload_end)?);
        let hashed = bytes
            .get(8..payload_end)
            .ok_or(ProtocolError::Truncated { needed: total, len: bytes.len() })?;
        let expected = fnv1a64(hashed);
        if found != expected {
            return Err(ProtocolError::ChecksumMismatch { expected, found });
        }
        let payload = bytes
            .get(HEADER_LEN..payload_end)
            .ok_or(ProtocolError::Truncated { needed: total, len: bytes.len() })?;
        Ok(Self { kind: header.kind, digest: header.digest, payload: payload.to_vec() })
    }

    /// Writes the frame to a stream.
    ///
    /// # Errors
    ///
    /// Propagates transport failures as [`ProtocolError::Io`].
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ProtocolError> {
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF
    /// *between* frames (the peer closed the connection); EOF inside a
    /// frame is [`ProtocolError::Truncated`].
    ///
    /// # Errors
    ///
    /// Any malformation or transport failure maps to a [`ProtocolError`].
    pub fn read_from(r: &mut impl Read) -> Result<Option<Self>, ProtocolError> {
        Self::read_interruptible(r, &|| false)
    }

    /// [`Self::read_from`] that additionally polls `stop` whenever the
    /// stream reports `WouldBlock`/`TimedOut` (a read timeout set by the
    /// caller). When `stop` returns true *between* frames the read gives
    /// up with `Ok(None)`; mid-frame it keeps reading so a frame already
    /// in flight is never torn.
    ///
    /// # Errors
    ///
    /// Any malformation or transport failure maps to a [`ProtocolError`].
    pub fn read_interruptible(
        r: &mut impl Read,
        stop: &dyn Fn() -> bool,
    ) -> Result<Option<Self>, ProtocolError> {
        let mut header_bytes = [0u8; HEADER_LEN];
        if read_full(r, &mut header_bytes, true, stop)?.is_none() {
            return Ok(None);
        }
        let header = parse_header(&header_bytes)?;
        let Some(total) = header.frame_len() else {
            return Err(ProtocolError::Oversized { payload_len: header.payload_len });
        };
        let mut rest = vec![0u8; total - HEADER_LEN];
        if read_full(r, &mut rest, false, stop)?.is_none() {
            // `read_full` yields `None` only when EOF at offset 0 is
            // allowed, which it is not here; report it as a torn frame
            // rather than asserting.
            return Err(ProtocolError::Truncated { needed: total, len: HEADER_LEN });
        }
        let payload_len = rest.len().saturating_sub(8);
        let found = u64::from_le_bytes(field(&rest, payload_len)?);
        let body = rest
            .get(..payload_len)
            .ok_or(ProtocolError::Truncated { needed: total, len: HEADER_LEN })?;
        let mut hashed = Vec::with_capacity(HEADER_LEN - 8 + payload_len);
        hashed.extend_from_slice(header_bytes.get(8..).unwrap_or_default());
        hashed.extend_from_slice(body);
        let expected = fnv1a64(&hashed);
        if found != expected {
            return Err(ProtocolError::ChecksumMismatch { expected, found });
        }
        rest.truncate(payload_len);
        Ok(Some(Self { kind: header.kind, digest: header.digest, payload: rest }))
    }
}

/// Parsed fixed-size prefix of a frame.
struct FrameHeader {
    kind: FrameKind,
    digest: u64,
    payload_len: u64,
}

impl FrameHeader {
    /// Total frame length (header + payload + checksum), or `None` when
    /// the claimed payload is over the cap or unaddressable.
    fn frame_len(&self) -> Option<usize> {
        if self.payload_len > MAX_PAYLOAD_LEN {
            return None;
        }
        let payload = usize::try_from(self.payload_len).ok()?;
        HEADER_LEN.checked_add(payload)?.checked_add(8)
    }
}

/// Validates magic, version and kind of a header block (the caller
/// guarantees at least `HEADER_LEN` bytes; shorter input reports
/// truncation, never panics).
fn parse_header(bytes: &[u8]) -> Result<FrameHeader, ProtocolError> {
    let magic: [u8; 8] = field(bytes, 0)?;
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(field(bytes, 8)?);
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion { found: version });
    }
    let tag = bytes
        .get(10)
        .copied()
        .ok_or(ProtocolError::Truncated { needed: HEADER_LEN, len: bytes.len() })?;
    let kind = FrameKind::from_code(tag).ok_or(ProtocolError::UnknownKind { tag })?;
    let digest = u64::from_le_bytes(field(bytes, 11)?);
    let payload_len = u64::from_le_bytes(field(bytes, 19)?);
    Ok(FrameHeader { kind, digest, payload_len })
}

/// Reads the `N`-byte field at offset `at`, reporting truncation as a
/// typed error — this parse path never indexes raw wire bytes.
fn field<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], ProtocolError> {
    bytes
        .get(at..at.saturating_add(N))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(ProtocolError::Truncated { needed: at.saturating_add(N), len: bytes.len() })
}

/// Fills `buf` from `r`, retrying on `WouldBlock`/`TimedOut`/`Interrupted`.
/// `Ok(None)` only when `allow_empty_eof` and the source is exhausted (or
/// `stop` fires) before the first byte; EOF mid-buffer is `Truncated`.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    allow_empty_eof: bool,
    stop: &dyn Fn() -> bool,
) -> Result<Option<()>, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(dst) = buf.get_mut(filled..) else { break };
        match r.read(dst) {
            Ok(0) => {
                return if filled == 0 && allow_empty_eof {
                    Ok(None)
                } else {
                    Err(ProtocolError::Truncated { needed: buf.len(), len: filled })
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if filled == 0 && allow_empty_eof && stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(Some(()))
}

/// One reconstruction job: the producing triple [`config_digest`] covers,
/// plus the stage the server should checkpoint for eviction spill.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The measurement-free program to reconstruct.
    pub program: Circuit,
    /// The device to run on.
    pub device: Device,
    /// The full pipeline configuration.
    pub config: JigsawConfig,
    /// Stage the cache archives when this job's entry is evicted. The
    /// useful hints are [`StageKind::GlobalRun`] (the default — rehydration
    /// replays only subset work, zero compiles) and
    /// [`StageKind::SubsetsSelected`]; hinting `Planned` makes rehydration
    /// recompile from scratch.
    pub hint: StageKind,
    /// Scheduling lane for this job (protocol v2). Excluded from
    /// [`Self::digest`] — results are priority-invariant, so identical
    /// submissions at different priorities still coalesce on one compute;
    /// the lane of the submission that *starts* the compute wins.
    pub priority: Priority,
}

impl JobRequest {
    /// A request with the default [`StageKind::GlobalRun`] spill hint and
    /// [`Priority::Interactive`] lane.
    #[must_use]
    pub fn new(program: Circuit, device: Device, config: JigsawConfig) -> Self {
        Self {
            program,
            device,
            config,
            hint: StageKind::GlobalRun,
            priority: Priority::Interactive,
        }
    }

    /// The same request in a different scheduling lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The content address of this job — the same FNV config digest the
    /// persist archives are keyed by.
    #[must_use]
    pub fn digest(&self) -> u64 {
        config_digest(&self.program, &self.device, &self.config)
    }
}

impl Encode for JobRequest {
    fn encode(&self, w: &mut Writer) {
        self.program.encode(w);
        self.device.encode(w);
        self.config.encode(w);
        w.put_u8(self.hint.code());
        w.put_u8(self.priority.code());
    }
}

impl Decode for JobRequest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let program = Circuit::decode(r)?;
        let device = Device::decode(r)?;
        let config = JigsawConfig::decode(r)?;
        let tag = r.u8()?;
        let hint =
            StageKind::from_code(tag).ok_or(CodecError::InvalidTag { what: "StageKind", tag })?;
        let tag = r.u8()?;
        let priority =
            Priority::from_code(tag).ok_or(CodecError::InvalidTag { what: "Priority", tag })?;
        Ok(Self { program, device, config, hint, priority })
    }
}

/// Why the server refused a job. Carried by [`FrameKind::JobError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or payload failed to parse.
    Malformed,
    /// The frame's digest field disagrees with the payload.
    DigestMismatch,
    /// The request decoded but the pipeline refused to plan it.
    PlanRejected,
    /// The computation itself failed (including a contained panic).
    ComputeFailed,
    /// The server is at capacity — its connection queue or job scheduler
    /// is full. Nothing is wrong with the job; resubmit later.
    Overloaded,
}

impl ErrorCode {
    /// The wire tag.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Self::Malformed => 1,
            Self::DigestMismatch => 2,
            Self::PlanRejected => 3,
            Self::ComputeFailed => 4,
            Self::Overloaded => 5,
        }
    }

    /// Parses a wire tag.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::Malformed),
            2 => Some(Self::DigestMismatch),
            3 => Some(Self::PlanRejected),
            4 => Some(Self::ComputeFailed),
            5 => Some(Self::Overloaded),
            _ => None,
        }
    }
}

/// A typed refusal: the category plus a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRejection {
    /// What category of refusal this is.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl JobRejection {
    /// Builds a rejection.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

impl fmt::Display for JobRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl Encode for JobRejection {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.code.code());
        w.put_str(&self.message);
    }
}

impl Decode for JobRejection {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.u8()?;
        let code =
            ErrorCode::from_code(tag).ok_or(CodecError::InvalidTag { what: "ErrorCode", tag })?;
        let message = r.str()?;
        Ok(Self { code, message })
    }
}

/// Decodes a submit frame's payload and enforces the digest binding.
///
/// # Errors
///
/// [`ProtocolError::Codec`] when the payload does not decode as a
/// [`JobRequest`], [`ProtocolError::DigestMismatch`] when the frame's
/// digest field disagrees with the decoded request.
pub fn decode_submit(frame: &Frame) -> Result<JobRequest, ProtocolError> {
    let request: JobRequest = decode_from_slice(&frame.payload)?;
    let computed = request.digest();
    if frame.digest != computed {
        return Err(ProtocolError::DigestMismatch { claimed: frame.digest, computed });
    }
    Ok(request)
}

/// Decodes a [`FrameKind::SubmitShard`] payload and enforces the digest
/// binding: the frame's digest field must equal the persist digest the
/// decoded stage re-derives, the same contract as [`decode_submit`].
///
/// # Errors
///
/// [`ProtocolError::Codec`] for a payload that fails structural
/// validation and [`ProtocolError::DigestMismatch`] for a digest lie.
pub fn decode_shard(frame: &Frame) -> Result<ShardRequest, ProtocolError> {
    let request: ShardRequest = decode_from_slice(&frame.payload)?;
    let computed = request.digest();
    if frame.digest != computed {
        return Err(ProtocolError::DigestMismatch { claimed: frame.digest, computed });
    }
    Ok(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_circuit::bench;
    use jigsaw_device::Device;

    fn sample_request() -> JobRequest {
        JobRequest::new(
            bench::ghz(4).circuit().clone(),
            Device::toronto(),
            JigsawConfig::jigsaw(2_048),
        )
    }

    #[test]
    fn frames_round_trip_through_bytes_and_streams() {
        let frame = Frame::submit(&sample_request());
        let bytes = frame.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes).expect("parses"), frame);
        let mut cursor = std::io::Cursor::new(&bytes);
        let read = Frame::read_from(&mut cursor).expect("reads").expect("one frame");
        assert_eq!(read, frame);
        // Clean EOF between frames is None, not an error.
        assert!(Frame::read_from(&mut cursor).expect("eof is clean").is_none());
    }

    #[test]
    fn submit_decodes_back_to_the_request_under_digest_binding() {
        let request = sample_request();
        let frame = Frame::submit(&request);
        assert_eq!(decode_submit(&frame).expect("bound"), request);

        // Tampering with the digest field alone violates the binding even
        // when the checksum is recomputed to match.
        let mut tampered = frame.clone();
        tampered.digest ^= 1;
        let reparsed = Frame::from_bytes(&tampered.to_bytes()).expect("valid frame shape");
        match decode_submit(&reparsed) {
            Err(ProtocolError::DigestMismatch { claimed, computed }) => {
                assert_eq!(claimed, request.digest() ^ 1);
                assert_eq!(computed, request.digest());
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_checks_are_ordered_and_typed() {
        let good = Frame::empty(FrameKind::MetricsRequest).to_bytes();

        let mut bad = good.clone();
        bad[0] ^= 0x40;
        assert!(matches!(Frame::from_bytes(&bad), Err(ProtocolError::BadMagic { .. })));

        let mut bad = good.clone();
        bad[8..10].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(ProtocolError::UnsupportedVersion { found: 9 })
        ));

        let mut bad = good.clone();
        bad[10] = 0xEE;
        assert!(matches!(Frame::from_bytes(&bad), Err(ProtocolError::UnknownKind { tag: 0xEE })));

        let mut bad = good.clone();
        bad[19..27].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Frame::from_bytes(&bad),
            Err(ProtocolError::Oversized { payload_len: u64::MAX })
        ));

        assert!(matches!(
            Frame::from_bytes(&good[..HEADER_LEN - 1]),
            Err(ProtocolError::Truncated { .. })
        ));

        let mut extended = good.clone();
        extended.push(0);
        assert!(matches!(
            Frame::from_bytes(&extended),
            Err(ProtocolError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn every_post_magic_flip_is_caught() {
        let bytes = Frame::submit(&sample_request()).to_bytes();
        for offset in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x01;
            assert!(Frame::from_bytes(&bad).is_err(), "flip at offset {offset} must not parse");
        }
    }

    #[test]
    fn priority_byte_round_trips_and_rejects_unknown_lanes() {
        let request = sample_request().with_priority(Priority::Background);
        let frame = Frame::submit(&request);
        assert_eq!(decode_submit(&frame).expect("decodes"), request);
        // Same digest at every priority: lanes must not split the cache key.
        assert_eq!(request.digest(), sample_request().digest());
        // An unknown lane tag is a typed codec refusal, not a panic.
        let mut bytes = encode_to_vec(&request);
        *bytes.last_mut().expect("non-empty") = 9;
        let err = decode_from_slice::<JobRequest>(&bytes).expect_err("bad lane");
        assert!(matches!(err, CodecError::InvalidTag { what: "Priority", .. }));
    }

    fn sample_shard_request() -> ShardRequest {
        let config = JigsawConfig::jigsaw(512).without_recompilation();
        let stage = jigsaw_core::pipeline::JigsawPipeline::plan(
            bench::ghz(4).circuit(),
            &Device::toronto(),
            &config,
        )
        .compile_global()
        .run_global()
        .select_subsets();
        ShardRequest {
            stage,
            shard: jigsaw_core::dist::Shard { index: 0, lo: 0, hi: 2 },
            priority: Priority::Sweep,
        }
    }

    #[test]
    fn shard_frames_round_trip_under_digest_binding() {
        let request = sample_shard_request();
        let frame = Frame::submit_shard(&request);
        assert_eq!(frame.kind, FrameKind::SubmitShard);
        let reparsed = Frame::from_bytes(&frame.to_bytes()).expect("parses");
        let decoded = decode_shard(&reparsed).expect("bound");
        // `SubsetsSelected` has no `PartialEq`; canonical bytes are the
        // equality the whole protocol is built on anyway.
        assert_eq!(encode_to_vec(&decoded), encode_to_vec(&request));

        let mut tampered = frame;
        tampered.digest ^= 1;
        let reparsed = Frame::from_bytes(&tampered.to_bytes()).expect("valid frame shape");
        match decode_shard(&reparsed) {
            Err(ProtocolError::DigestMismatch { claimed, computed }) => {
                assert_eq!(claimed, request.digest() ^ 1);
                assert_eq!(computed, request.digest());
            }
            other => panic!("expected DigestMismatch, got {other:?}"),
        }
    }

    #[test]
    fn shard_payload_decode_rejects_out_of_range_shards() {
        let mut request = sample_shard_request();
        request.shard.hi = 10_000;
        let err = decode_from_slice::<ShardRequest>(&encode_to_vec(&request)).expect_err("range");
        assert!(matches!(err, CodecError::InvalidValue { what: "ShardRequest", .. }), "{err:?}");
    }

    #[test]
    fn rejection_payloads_round_trip() {
        let rejection = JobRejection::new(ErrorCode::PlanRejected, "no fitting subset size");
        let bytes = encode_to_vec(&rejection);
        assert_eq!(decode_from_slice::<JobRejection>(&bytes).expect("decodes"), rejection);
        let err = decode_from_slice::<JobRejection>(&[0xFF]).expect_err("bad tag");
        assert!(matches!(err, CodecError::InvalidTag { what: "ErrorCode", .. }));
    }
}
