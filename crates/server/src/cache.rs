//! Content-addressed stage cache with single-flight computation and
//! archive-backed eviction.
//!
//! Entries are keyed by the persist layer's FNV config digest
//! ([`jigsaw_core::persist::config_digest`]) — the same content address the
//! on-disk archives use, so "this exact job" means the same thing in
//! memory, on the wire and on disk.
//!
//! Three regimes, in lookup order:
//!
//! 1. **Ready** — the response bytes are in memory; serve immediately.
//! 2. **In flight** — another thread is computing this digest right now;
//!    *coalesce*: park on the flight's condvar and share its one result.
//!    In-flight work is tracked separately from the ready map and never
//!    counts against capacity, so a cache of capacity 1 can still have K
//!    waiters without deadlocking (see `tests/server_dedup.rs`).
//! 3. **Spilled** — a previous entry was evicted, but eviction wrote the
//!    job's checkpoint archive (the stage the request hinted) to the spill
//!    directory first. Rehydration resumes from that archive and replays
//!    only the downstream stages — zero global compiles (see
//!    `tests/server_eviction.rs`).
//!
//! Capacity is enforced on the ready map with least-recently-used
//! eviction. The compute closure runs *outside* the cache lock and inside
//! a [`catch_unwind`] fault barrier: a panicking job poisons nothing,
//! fills its flight with a typed [`ErrorCode::ComputeFailed`] rejection,
//! and every coalesced waiter sees that same rejection. Errors are never
//! cached — a later resubmission retries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use jigsaw_core::lockcheck::{Condvar, Mutex};
use jigsaw_core::telemetry::{self, Counter};
use jigsaw_pmf::hashing::DetHashMap;

use crate::protocol::{ErrorCode, JobRejection};

/// Shared response bytes: one allocation serves every duplicate submitter.
pub type SharedBytes = Arc<Vec<u8>>;

/// What a compute/rehydrate closure yields: the encoded response payload
/// plus the checkpoint archive bytes kept for eviction spill.
pub type JobArtifacts = (Vec<u8>, Vec<u8>);

/// How a request was satisfied (feeds the metrics registry; tests assert
/// on it directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the in-memory ready map.
    Hit,
    /// Parked on another thread's in-flight computation.
    Coalesced,
    /// Computed fresh.
    Miss,
    /// Recovered from a spilled eviction archive.
    Rehydrated,
}

/// Counters the cache feeds in the process-wide registry.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    /// Ready-map hits.
    pub hits: Counter,
    /// Fresh computations.
    pub misses: Counter,
    /// Requests that parked on an in-flight duplicate.
    pub coalesced: Counter,
    /// Entries evicted to spill archives.
    pub evictions: Counter,
    /// Entries recovered from spill archives.
    pub rehydrations: Counter,
    /// Computations that returned or raised an error.
    pub compute_errors: Counter,
}

impl CacheMetrics {
    /// Registers (idempotently) the cache counter family in the global
    /// registry.
    #[must_use]
    pub fn register() -> Self {
        let registry = telemetry::global();
        Self {
            hits: registry.counter("jigsaw_server_cache_hits_total", &[]),
            misses: registry.counter("jigsaw_server_cache_misses_total", &[]),
            coalesced: registry.counter("jigsaw_server_cache_coalesced_total", &[]),
            evictions: registry.counter("jigsaw_server_cache_evictions_total", &[]),
            rehydrations: registry.counter("jigsaw_server_cache_rehydrations_total", &[]),
            compute_errors: registry.counter("jigsaw_server_compute_errors_total", &[]),
        }
    }
}

/// One completed entry: the response to serve and the checkpoint to spill
/// on eviction.
struct ReadyEntry {
    response: SharedBytes,
    checkpoint: Arc<Vec<u8>>,
    last_used: u64,
}

/// One in-flight computation: the eventual shared result plus the condvar
/// duplicates park on.
struct Flight {
    slot: Mutex<Option<Result<SharedBytes, JobRejection>>>,
    done: Condvar,
}

struct Inner {
    ready: DetHashMap<u64, ReadyEntry>,
    inflight: DetHashMap<u64, Arc<Flight>>,
    /// LRU clock: bumped on every touch, copied into `last_used`.
    tick: u64,
}

/// The content-addressed stage cache. See the module docs for semantics.
pub struct StageCache {
    capacity: usize,
    spill_dir: PathBuf,
    inner: Mutex<Inner>,
    metrics: CacheMetrics,
}

impl StageCache {
    /// Creates a cache holding at most `capacity` ready entries, spilling
    /// evictions into `spill_dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `spill_dir` cannot be created.
    pub fn new(capacity: usize, spill_dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let spill_dir = spill_dir.into();
        std::fs::create_dir_all(&spill_dir)?;
        Ok(Self {
            capacity,
            spill_dir,
            inner: Mutex::new(
                "cache.inner",
                Inner { ready: DetHashMap::default(), inflight: DetHashMap::default(), tick: 0 },
            ),
            metrics: CacheMetrics::register(),
        })
    }

    /// The counters this cache feeds.
    #[must_use]
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// Where an evicted entry for `digest` is archived.
    #[must_use]
    pub fn spill_path(&self, digest: u64) -> PathBuf {
        self.spill_dir.join(format!("{digest:016x}.jigsaw"))
    }

    /// Number of ready (in-memory) entries.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned (a bug: closures never run
    /// under the lock).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// Whether the ready map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves `digest` from the first regime that applies: ready memory,
    /// an in-flight duplicate, a spill archive (via `rehydrate`), or a
    /// fresh computation (via `compute`). Both closures run outside the
    /// cache lock and inside a panic fault barrier, and must return the
    /// encoded response plus the checkpoint archive bytes to keep for
    /// eviction.
    ///
    /// # Errors
    ///
    /// Returns the closure's rejection (or a `ComputeFailed` rejection
    /// wrapping a contained panic). Errors are not cached.
    ///
    /// # Panics
    ///
    /// Panics only if the cache lock itself is poisoned, which the fault
    /// barrier makes unreachable from job code.
    pub fn get_or_compute(
        &self,
        digest: u64,
        compute: impl FnOnce() -> Result<JobArtifacts, JobRejection>,
        rehydrate: impl FnOnce(&Path) -> Result<JobArtifacts, JobRejection>,
    ) -> (Result<SharedBytes, JobRejection>, Outcome) {
        let flight = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.ready.get_mut(&digest) {
                entry.last_used = tick;
                let response = Arc::clone(&entry.response);
                self.metrics.hits.inc();
                return (Ok(response), Outcome::Hit);
            }
            if let Some(flight) = inner.inflight.get(&digest) {
                let flight = Arc::clone(flight);
                drop(inner);
                self.metrics.coalesced.inc();
                return (Self::wait(&flight), Outcome::Coalesced);
            }
            let flight = Arc::new(Flight {
                slot: Mutex::new("cache.flight.slot", None),
                done: Condvar::new(),
            });
            inner.inflight.insert(digest, Arc::clone(&flight));
            flight
        };

        // We own the flight. Compute outside the lock, behind the barrier.
        let spill = self.spill_path(digest);
        let (result, outcome) = if spill.is_file() {
            self.metrics.rehydrations.inc();
            (Self::contain(move || rehydrate(&spill)), Outcome::Rehydrated)
        } else {
            self.metrics.misses.inc();
            (Self::contain(compute), Outcome::Miss)
        };

        let shared = match result {
            Ok((response, checkpoint)) => {
                let response = Arc::new(response);
                self.install(digest, Arc::clone(&response), Arc::new(checkpoint));
                Ok(response)
            }
            Err(rejection) => {
                self.metrics.compute_errors.inc();
                self.inner.lock().inflight.remove(&digest);
                Err(rejection)
            }
        };

        let mut slot = flight.slot.lock();
        *slot = Some(shared.clone());
        drop(slot);
        flight.done.notify_all();
        (shared, outcome)
    }

    /// Parks until the flight's owner fills the slot, then shares its
    /// result.
    fn wait(flight: &Flight) -> Result<SharedBytes, JobRejection> {
        let mut slot = flight.slot.lock();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = flight.done.wait(slot);
        }
    }

    /// The fault barrier: a panicking closure becomes a typed rejection.
    fn contain(
        job: impl FnOnce() -> Result<JobArtifacts, JobRejection>,
    ) -> Result<JobArtifacts, JobRejection> {
        catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|payload| {
            let detail = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            Err(JobRejection::new(
                ErrorCode::ComputeFailed,
                format!("job panicked (contained): {detail}"),
            ))
        })
    }

    /// Moves a finished flight into the ready map, evicting LRU entries to
    /// spill archives until capacity holds.
    fn install(&self, digest: u64, response: SharedBytes, checkpoint: Arc<Vec<u8>>) {
        let mut inner = self.inner.lock();
        inner.inflight.remove(&digest);
        inner.tick += 1;
        let tick = inner.tick;
        inner.ready.insert(digest, ReadyEntry { response, checkpoint, last_used: tick });
        while inner.ready.len() > self.capacity {
            let victim = inner
                .ready
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(&digest, _)| digest);
            let Some(victim) = victim else { break };
            let Some(entry) = inner.ready.remove(&victim) else { break };
            // Spill under the lock: the archive must exist before anyone
            // can observe the entry as gone, or a racing duplicate would
            // recompute instead of rehydrating.
            self.spill(victim, &entry.checkpoint);
            self.metrics.evictions.inc();
        }
    }

    /// Writes an eviction archive atomically (temp + rename), matching the
    /// persist layer's crash discipline.
    fn spill(&self, digest: u64, checkpoint: &[u8]) {
        let path = self.spill_path(digest);
        let tmp = path.with_extension("jigsaw.tmp");
        let written = std::fs::write(&tmp, checkpoint).and_then(|()| std::fs::rename(&tmp, &path));
        if written.is_err() {
            // Spill failure is not fatal: the entry is simply gone and a
            // resubmission recomputes. Leave no torn file behind.
            let _ = std::fs::remove_file(&tmp);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("jigsaw-server-cache-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn artifacts(tag: u8) -> Result<JobArtifacts, JobRejection> {
        Ok((vec![tag; 4], vec![0xC0, tag]))
    }

    #[test]
    fn hits_serve_the_installed_bytes() {
        let cache = StageCache::new(4, tmp_dir("hits")).expect("spill dir");
        let (first, outcome) = cache.get_or_compute(7, || artifacts(1), |_| unreachable!());
        assert_eq!(outcome, Outcome::Miss);
        let (second, outcome) = cache.get_or_compute(7, || unreachable!(), |_| unreachable!());
        assert_eq!(outcome, Outcome::Hit);
        assert_eq!(first.expect("computed"), second.expect("cached"));
    }

    #[test]
    fn capacity_evicts_lru_to_spill_and_rehydrates() {
        let cache = StageCache::new(1, tmp_dir("evict")).expect("spill dir");
        let _ = cache.get_or_compute(1, || artifacts(1), |_| unreachable!());
        let _ = cache.get_or_compute(2, || artifacts(2), |_| unreachable!());
        assert_eq!(cache.len(), 1, "capacity bound holds");
        assert!(cache.spill_path(1).is_file(), "eviction archived digest 1");
        // A resubmission of the evicted digest must go down the rehydrate
        // path, not the compute path.
        let (result, outcome) = cache.get_or_compute(
            1,
            || panic!("must not recompute"),
            |path| {
                assert!(path.is_file());
                artifacts(1)
            },
        );
        assert_eq!(outcome, Outcome::Rehydrated);
        assert_eq!(*result.expect("rehydrated"), vec![1; 4]);
        assert!(cache.metrics().evictions.get() >= 1);
    }

    #[test]
    fn panics_become_typed_rejections_and_are_not_cached() {
        let cache = StageCache::new(4, tmp_dir("panic")).expect("spill dir");
        let (result, _) =
            cache.get_or_compute(9, || panic!("boom at subset 3"), |_| unreachable!());
        let rejection = result.expect_err("contained");
        assert_eq!(rejection.code, ErrorCode::ComputeFailed);
        assert!(rejection.message.contains("boom at subset 3"), "{rejection}");
        // The failure was not installed: the next submission recomputes
        // and can succeed.
        let (result, outcome) = cache.get_or_compute(9, || artifacts(9), |_| unreachable!());
        assert_eq!(outcome, Outcome::Miss);
        assert!(result.is_ok());
        assert!(cache.metrics().compute_errors.get() >= 1);
    }

    #[test]
    fn duplicate_submitters_coalesce_on_one_computation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cache = Arc::new(StageCache::new(4, tmp_dir("dedup")).expect("spill dir"));
        let computes = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (result, _) = cache.get_or_compute(
                        42,
                        || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for peers
                            // to pile onto it.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            artifacts(42)
                        },
                        |_| unreachable!(),
                    );
                    result.expect("shared result")
                })
            })
            .collect();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().expect("no panic")).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one computation");
        assert!(results.windows(2).all(|w| w[0] == w[1]), "all waiters share it");
    }
}
