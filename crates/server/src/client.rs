//! A blocking client for the job server.
//!
//! [`Client::submit`] is the whole protocol for most callers: frame the
//! request, read one reply, decode. The raw layers
//! ([`Client::submit_bytes`], [`Client::send_raw`], [`Client::read_frame`])
//! exist for the test battery — bit-identity assertions compare raw
//! response payloads, and the fuzz suite writes deliberately corrupt
//! bytes.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use jigsaw_circuit::Circuit;
use jigsaw_core::{JigsawConfig, JigsawResult, StageKind};
use jigsaw_device::Device;
use jigsaw_pmf::codec::decode_from_slice;

use crate::protocol::{Frame, FrameKind, JobRejection, JobRequest, ProtocolError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Protocol(ProtocolError),
    /// The server refused the job with a typed rejection.
    Rejected(JobRejection),
    /// The server replied with a frame kind the call did not expect.
    UnexpectedFrame(FrameKind),
    /// The server closed the connection before replying.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Protocol(e) => write!(f, "protocol failure: {e}"),
            Self::Rejected(r) => write!(f, "server rejected the job: {r}"),
            Self::UnexpectedFrame(kind) => write!(f, "unexpected reply frame {kind:?}"),
            Self::Closed => write!(f, "server closed the connection before replying"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A blocking connection to a job server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self { stream: TcpStream::connect(addr)? })
    }

    /// Submits one job and decodes the reconstructed result.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the server's typed refusal; other
    /// variants are transport/framing failures.
    pub fn submit(
        &mut self,
        program: &Circuit,
        device: &Device,
        config: &JigsawConfig,
        hint: StageKind,
    ) -> Result<JigsawResult, ClientError> {
        let payload = self.submit_bytes(program, device, config, hint)?;
        let result = decode_from_slice(&payload).map_err(ProtocolError::Codec)?;
        Ok(result)
    }

    /// Submits one job and returns the *raw encoded* result payload —
    /// the bytes bit-identity tests compare.
    ///
    /// # Errors
    ///
    /// Same surface as [`Self::submit`].
    pub fn submit_bytes(
        &mut self,
        program: &Circuit,
        device: &Device,
        config: &JigsawConfig,
        hint: StageKind,
    ) -> Result<Vec<u8>, ClientError> {
        let mut request = JobRequest::new(program.clone(), device.clone(), config.clone());
        request.hint = hint;
        self.submit_request(&request)
    }

    /// Submits a fully specified [`JobRequest`] — the path that exposes the
    /// scheduling lane ([`JobRequest::priority`]) and the spill hint
    /// together — returning the raw encoded result payload.
    ///
    /// # Errors
    ///
    /// Same surface as [`Self::submit`]; a saturated server surfaces as
    /// [`ClientError::Rejected`] carrying
    /// [`ErrorCode::Overloaded`](crate::protocol::ErrorCode::Overloaded).
    pub fn submit_request(&mut self, request: &JobRequest) -> Result<Vec<u8>, ClientError> {
        Frame::submit(request).write_to(&mut self.stream)?;
        let reply = self.expect_frame()?;
        match reply.kind {
            FrameKind::JobResult => Ok(reply.payload),
            FrameKind::JobError => {
                let rejection = decode_from_slice(&reply.payload).map_err(ProtocolError::Codec)?;
                Err(ClientError::Rejected(rejection))
            }
            kind => Err(ClientError::UnexpectedFrame(kind)),
        }
    }

    /// Submits one distributed-sweep shard and decodes the worker's
    /// partial. The caller (normally the sweep driver in
    /// `crate::dist`) is responsible for merging partials in shard-index
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries the worker's typed
    /// [`JobRejection`]; other variants are transport/framing failures —
    /// including [`ClientError::Closed`] when the worker dies mid-shard.
    pub fn submit_shard(
        &mut self,
        request: &jigsaw_core::dist::ShardRequest,
    ) -> Result<jigsaw_pmf::ShardPartial, ClientError> {
        Frame::submit_shard(request).write_to(&mut self.stream)?;
        let reply = self.expect_frame()?;
        match reply.kind {
            FrameKind::ShardResult => {
                let partial = decode_from_slice(&reply.payload).map_err(ProtocolError::Codec)?;
                Ok(partial)
            }
            FrameKind::ShardError => {
                let rejection = decode_from_slice(&reply.payload).map_err(ProtocolError::Codec)?;
                Err(ClientError::Rejected(rejection))
            }
            kind => Err(ClientError::UnexpectedFrame(kind)),
        }
    }

    /// Fetches the server's metrics exposition text.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or an unexpected reply kind.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        Frame::empty(FrameKind::MetricsRequest).write_to(&mut self.stream)?;
        let reply = self.expect_frame()?;
        match reply.kind {
            FrameKind::MetricsText => Ok(String::from_utf8_lossy(&reply.payload).into_owned()),
            kind => Err(ClientError::UnexpectedFrame(kind)),
        }
    }

    /// Asks the server to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or an unexpected reply kind.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        Frame::empty(FrameKind::Shutdown).write_to(&mut self.stream)?;
        let reply = self.expect_frame()?;
        match reply.kind {
            FrameKind::ShutdownAck => Ok(()),
            kind => Err(ClientError::UnexpectedFrame(kind)),
        }
    }

    /// Writes raw bytes to the connection verbatim (fuzz-test hook).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one reply frame; `None` when the server closed cleanly.
    ///
    /// # Errors
    ///
    /// Propagates framing failures.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        Frame::read_from(&mut self.stream)
    }

    fn expect_frame(&mut self) -> Result<Frame, ClientError> {
        self.read_frame()?.ok_or(ClientError::Closed)
    }
}
