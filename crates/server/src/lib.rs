#![forbid(unsafe_code)]
//! JigSaw as a service: a concurrent reconstruction job server with a
//! content-addressed stage cache.
//!
//! The repo's pipeline is deterministic and content-addressable — the same
//! `(program, device, config)` triple always produces the same bytes, and
//! the persist layer already names that triple with an FNV digest
//! (`jigsaw_core::persist::config_digest`). This crate turns those two
//! facts into a serving layer:
//!
//! * [`protocol`] — length-delimited job frames over TCP, reusing the
//!   exact `jigsaw_pmf::codec` wire types the archives use, with a
//!   checksum span that provably catches any single-bit flip after the
//!   magic (`docs/FORMAT.md` §6).
//! * [`cache`] — the content-addressed stage cache: concurrent identical
//!   submissions *coalesce* on one in-flight computation, completed
//!   entries serve from memory under an LRU capacity bound, and eviction
//!   archives the job's checkpoint stage through `jigsaw_core::persist`
//!   so a resubmission *rehydrates* from disk instead of recompiling.
//! * [`server`] — the threaded accept loop, panic fault barrier, and
//!   cooperative shutdown.
//! * [`client`] — a blocking client, plus the raw hooks the concurrency
//!   and fuzz test batteries drive.
//! * [`dist`] — the wire side of distributed CPM sweeps: shards of a
//!   checkpointed `SubsetsSelected` scatter to worker processes as v3
//!   frames and merge back bit-identically (`jigsaw_core::dist` owns the
//!   planning/retry/merge algebra).
//!
//! Responses are bit-identical to a solo `jigsaw_core::run_jigsaw` call:
//! the server runs the same staged pipeline, stage replay is deterministic
//! at every thread count, and the encoded result excludes wall clocks.
//!
//! # Examples
//!
//! ```no_run
//! use jigsaw_circuit::bench;
//! use jigsaw_core::{JigsawConfig, StageKind};
//! use jigsaw_device::Device;
//! use jigsaw_server::client::Client;
//! use jigsaw_server::server::{serve, ServerConfig};
//!
//! let handle = serve(&ServerConfig::new("/tmp/jigsaw-spill")).expect("bind");
//! let mut client = Client::connect(handle.addr()).expect("connect");
//! let result = client
//!     .submit(
//!         bench::ghz(8).circuit(),
//!         &Device::toronto(),
//!         &JigsawConfig::jigsaw(16_384),
//!         StageKind::GlobalRun,
//!     )
//!     .expect("reconstructed");
//! println!("reconstructed {} outcomes", result.output.support_size());
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod dist;
pub mod protocol;
pub mod server;

pub use cache::{CacheMetrics, Outcome, StageCache};
pub use client::{Client, ClientError};
pub use dist::{run_distributed, RemoteRunner};
pub use protocol::{
    decode_submit, ErrorCode, Frame, FrameKind, JobRejection, JobRequest, ProtocolError,
};
pub use server::{serve, ServerConfig, ServerHandle};
