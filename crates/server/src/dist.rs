//! The wire side of distributed CPM sweeps: a [`ShardRunner`] that ships
//! shards to remote worker processes over the v3 shard frames.
//!
//! `jigsaw_core::dist` owns the sweep algebra — planning, retry, merge —
//! against an abstract [`ShardRunner`]. This module supplies the runner
//! that crosses a process boundary: [`RemoteRunner`] connects to one
//! worker address per shard, frames the checkpointed stage as a
//! `SubmitShard`, and decodes the worker's `ShardResult` back into the
//! [`ShardPartial`] the driver merges.
//!
//! Connecting per shard (rather than holding one long-lived stream) is a
//! deliberate fault-tolerance choice: a worker killed mid-shard surfaces
//! as a connection error on exactly the attempt it ate, the driver
//! requeues that shard for a surviving worker, and the retried attempt
//! starts on a fresh socket with no half-read framing state. Because
//! per-CPM seeds are pinned by CPM index, the retry produces the same
//! bytes the dead worker would have — the merged result is bit-identical
//! no matter how many workers die (as long as one survives).

use std::net::SocketAddr;

use jigsaw_core::dist::{self, DistConfig, DistError, Shard, ShardRequest, ShardRunner};
use jigsaw_core::pipeline::SubsetsSelected;
use jigsaw_core::sched::Priority;
use jigsaw_core::JigsawResult;
use jigsaw_pmf::ShardPartial;

use crate::client::Client;

/// A [`ShardRunner`] that executes shards on a remote worker process.
///
/// One runner wraps one worker address; the sweep driver owns one runner
/// per worker and feeds each from the shared shard queue. Every shard is
/// a fresh connection — see the module docs for why.
#[derive(Debug, Clone)]
pub struct RemoteRunner {
    addr: SocketAddr,
}

impl RemoteRunner {
    /// A runner targeting the worker at `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// The worker address this runner ships shards to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl ShardRunner for RemoteRunner {
    fn run_shard(
        &mut self,
        stage: &SubsetsSelected,
        shard: &Shard,
        priority: Priority,
    ) -> Result<ShardPartial, String> {
        let mut client = Client::connect(self.addr)
            .map_err(|e| format!("worker {} unreachable: {e}", self.addr))?;
        let request = ShardRequest { stage: stage.clone(), shard: *shard, priority };
        client
            .submit_shard(&request)
            .map_err(|e| format!("worker {} failed shard {}: {e}", self.addr, shard.index))
    }
}

/// Runs a distributed sweep over the workers at `addrs` and merges their
/// partials into the [`JigsawResult`] a solo `run_jigsaw` would produce —
/// bit-identical regardless of worker count, shard size, completion order
/// or which worker ran which shard.
///
/// # Errors
///
/// [`DistError::NoWorkers`] for an empty address list; otherwise the
/// sweep's retry/watchdog surface (`ShardFailed`, `Timeout`, `Merge`).
pub fn run_distributed(
    stage: &SubsetsSelected,
    addrs: &[SocketAddr],
    config: &DistConfig,
) -> Result<JigsawResult, DistError> {
    let runners: Vec<Box<dyn ShardRunner>> = addrs
        .iter()
        .map(|&addr| Box::new(RemoteRunner::new(addr)) as Box<dyn ShardRunner>)
        .collect();
    dist::run_sharded(stage, runners, config)
}
