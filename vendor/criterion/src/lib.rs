//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over a simple
//! wall-clock sampler: one warm-up iteration, then `sample_size` timed
//! iterations, reporting min / mean / max per benchmark id.
//!
//! Set `CRITERION_SAMPLE_SIZE` to override every group's sample size (CI
//! uses `1` for a smoke run).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hints the optimizer that `value` is used, preventing dead-code deletion
/// of benchmarked expressions.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// A named benchmark identifier, usually built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.effective_samples() };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.effective_samples() };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group. Present for API compatibility; reporting happens
    /// per-benchmark.
    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1)
    }

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id.id);
            return;
        }
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{}: mean {mean:?} (min {min:?} .. max {max:?}, {} samples)",
            self.name,
            id.id,
            samples.len()
        );
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions under one group entry point, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(12).id, "12");
        assert_eq!(BenchmarkId::new("width", 16).id, "width/16");
    }
}
