//! Parallel-iterator traits: the `map`/`collect` subset of rayon's API.

use crate::parallel_map;

/// A parallel iterator. Only `map` + `collect` are supported; `collect`
/// drives the whole chain through [`crate::parallel_map`] and preserves
/// input order.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Executes the chain, returning all items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the chain and collects the results.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.drive())
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over an owned vector of items.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;

    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter { items: self.iter().collect() }
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), self.f)
    }
}
