//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the rayon API subset the workspace uses on top of `std::thread::scope`:
//!
//! * [`prelude`] — `into_par_iter()` / `par_iter()` returning a parallel
//!   iterator with `map` and `collect`.
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — caps the worker count
//!   for everything run inside the closure.
//! * [`current_num_threads`] — the effective worker count.
//!
//! Work is distributed dynamically (a shared index queue, one `std` thread
//! per worker) and results are returned **in input order**, so parallel and
//! serial execution of a pure function produce identical output — the
//! property the executor's seeded-reproducibility tests rely on.
//!
//! # Examples
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = (0u64..100).collect::<Vec<_>>()
//!     .into_par_iter()
//!     .map(|x| x * x)
//!     .collect();
//! assert_eq!(squares[9], 81);
//! ```

use std::cell::Cell;
use std::sync::Mutex;

pub mod iter;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`];
    /// 0 means "no override" (use all available cores).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// Returns the number of workers a parallel operation started here would
/// use: an installed [`ThreadPool`] cap if one is active, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    let cap = THREAD_CAP.with(Cell::get);
    if cap == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        // An explicit worker count wins even beyond the core count,
        // matching upstream rayon's ThreadPoolBuilder::num_threads.
        cap
    }
}

/// Builds a [`ThreadPool`] with a fixed worker count.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (all cores) worker count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means all available cores.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Finalizes the pool. Never fails in this stand-in; the `Result`
    /// mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A worker-count scope. Unlike upstream rayon there are no persistent
/// worker threads; `install` simply caps how many scoped threads parallel
/// operations inside the closure may spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker cap active on the current thread.
    /// The previous cap is restored even if `op` panics.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_CAP.with(|cap| cap.set(self.0));
            }
        }
        let _restore = Restore(THREAD_CAP.with(|cap| cap.replace(self.num_threads)));
        op()
    }
}

/// Applies `f` to every item on a dynamically balanced scoped-thread team,
/// returning results in input order. This is the engine behind
/// [`iter::ParallelIterator::collect`]; it is public because
/// `jigsaw_sim::parallel::fan_out` (the workspace's shared fan-out helper)
/// calls it directly.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue poisoned").next();
                        match next {
                            Some((i, item)) => out.push((i, f(item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..1000).collect(), |x: u32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_caps_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        assert_ne!(THREAD_CAP.with(std::cell::Cell::get), 1, "cap must be restored");
    }

    #[test]
    fn par_iter_matches_serial() {
        let v: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = v.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = v.par_iter().map(|x| x * x).collect();
        assert_eq!(serial, parallel);
    }
}
