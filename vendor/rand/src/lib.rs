//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, reproducible generator
//!   (xoshiro256++ seeded through SplitMix64, not ChaCha; seeds are **not**
//!   stream-compatible with upstream rand, only with this workspace).
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point used.
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`].
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Everything is deterministic given the seed, which is what the JigSaw
//! reproduction actually relies on (seeded experiments, bit-identical
//! reruns).
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10);
//! assert!((0..10).contains(&k));
//!
//! // Identical seeds replay identical streams.
//! let a: u64 = StdRng::seed_from_u64(1).gen();
//! let b: u64 = StdRng::seed_from_u64(1).gen();
//! assert_eq!(a, b);
//! ```

pub mod rngs;
pub mod seq;

/// Low-level uniform word source. All higher-level sampling derives from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring rand's trait of the same name.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range of. The
/// blanket [`SampleRange`] impls below are deliberately generic over this
/// trait (matching upstream rand) so integer-literal inference unifies the
/// range's element type with the call site's expected type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
            ) -> Self {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_replay() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5)] = true;
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
