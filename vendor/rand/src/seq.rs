//! Sequence-sampling helpers: the `SliceRandom` subset the workspace uses.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    (rng.next_u64() % bound as u64) as usize
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
