//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the strategy-combinator subset the workspace's property tests use:
//! ranges and tuples as strategies, [`Just`], [`any`], `prop_map` /
//! `prop_flat_map`, [`collection::vec`], [`ProptestConfig::with_cases`] and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics are simplified relative to upstream: cases are generated from
//! a deterministic per-test RNG (seeded from the test name, overridable via
//! `PROPTEST_CASES` for the case count) and there is **no shrinking** — a
//! failing case panics with the ordinary assertion message.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // (inside a test module this would also carry `#[test]`)
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use rand::rngs::StdRng;
use rand::{SampleRange, SampleUniform, SeedableRng, Standard};

pub mod collection;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    /// The `prop::` path alias used by `prop::collection::vec(..)`.
    pub use crate as prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        Self { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Builds the deterministic RNG for one property, seeded from its name so
/// every test keeps its own reproducible stream.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values; the combinators mirror proptest's.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to pick a second-stage strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, W, F: Fn(B::Value) -> W> Strategy for Map<B, F> {
    type Value = W;

    fn generate(&self, rng: &mut StdRng) -> W {
        (self.f)(self.base.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMap<B, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}

impl_arbitrary_standard!(u32, u64, bool, f64);

macro_rules! impl_arbitrary_cast {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut StdRng) -> Self {
                <u64 as Standard>::sample_standard(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_cast!(u8, u16, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<T: SampleUniform + Clone> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner_rng = $crate::test_rng(stringify!($name));
            for _ in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut runner_rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn flat_map_respects_dependent_bounds() {
        let strat = (1usize..=24).prop_flat_map(|w| (0u64..(1u64 << w), Just(w)));
        let mut rng = crate::test_rng("flat_map_respects_dependent_bounds");
        for _ in 0..200 {
            let (v, w) = strat.generate(&mut rng);
            assert!((1..=24).contains(&w));
            assert!(v < (1u64 << w));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = prop::collection::vec(0.0f64..1.0, 3..=7);
        let mut rng = crate::test_rng("vec_strategy_respects_size_range");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..=7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u8..10, 0u8..10), c in any::<u64>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c, c);
        }
    }
}
