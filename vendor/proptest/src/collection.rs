//! Collection strategies: the `vec` subset the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec`s with element strategy `S`; see [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
