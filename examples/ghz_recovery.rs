//! GHZ scaling study: how JigSaw and JigSaw-M keep cat states inferable as
//! programs grow — the paper's motivating scenario, where measurement error
//! accumulates across every measured qubit.
//!
//! ```text
//! cargo run --release --example ghz_recovery
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::compiler::CompilerOptions;
use jigsaw_repro::core::{run_baseline, run_jigsaw, JigsawConfig};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::metrics;
use jigsaw_repro::sim::{resolve_correct_set, RunConfig};

fn main() {
    let device = Device::toronto();
    let trials = 8_192;
    let compiler = CompilerOptions { max_seeds: 6, ..CompilerOptions::default() };

    println!("GHZ scaling on {} ({trials} trials per policy)", device.name());
    println!();
    println!(
        "{:>5}  {:>10} {:>10} {:>10}  {:>8} {:>8}",
        "size", "baseline", "JigSaw", "JigSaw-M", "gain", "gain-M"
    );

    for n in [4usize, 6, 8, 10, 12, 14] {
        let b = bench::ghz(n);
        let correct = resolve_correct_set(&b);

        let baseline =
            run_baseline(b.circuit(), &device, trials, 7, &RunConfig::default(), &compiler);
        let jig_cfg = JigsawConfig { compiler, ..JigsawConfig::jigsaw(trials) }.with_seed(7);
        let jig = run_jigsaw(b.circuit(), &device, &jig_cfg);
        let jm_cfg = JigsawConfig { subset_sizes: vec![2, 3, 4, 5], ..jig_cfg.clone() };
        let jm = run_jigsaw(b.circuit(), &device, &jm_cfg);

        let p_base = metrics::pst(&baseline, &correct);
        let p_jig = metrics::pst(&jig.output, &correct);
        let p_jm = metrics::pst(&jm.output, &correct);
        println!(
            "{n:>5}  {p_base:>10.4} {p_jig:>10.4} {p_jm:>10.4}  {:>7.2}x {:>7.2}x",
            p_jig / p_base,
            p_jm / p_base
        );
    }
    println!();
    println!("Expected: baseline PST collapses with size; JigSaw's gain widens.");
}
