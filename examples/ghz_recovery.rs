//! GHZ scaling study: how JigSaw and JigSaw-M keep cat states inferable as
//! programs grow — the paper's motivating scenario, where measurement error
//! accumulates across every measured qubit.
//!
//! JigSaw and JigSaw-M differ only downstream of the global run, so each
//! size drives the staged pipeline once to `GlobalRun` and forks it — one
//! global compile + simulation per size instead of two.
//!
//! ```text
//! cargo run --release --example ghz_recovery
//! JIGSAW_TRIALS=2000 cargo run --release --example ghz_recovery
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::compiler::CompilerOptions;
use jigsaw_repro::core::{run_baseline_from, JigsawConfig, JigsawPipeline, ReferenceConfig};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::metrics;
use jigsaw_repro::sim::resolve_correct_set;

fn main() {
    let device = Device::toronto();
    let trials = jigsaw_repro::example_budget(8_192);
    let compiler = CompilerOptions { max_seeds: 6, ..CompilerOptions::default() };

    println!("GHZ scaling on {} ({trials} trials per policy)", device.name());
    println!();
    println!(
        "{:>5}  {:>10} {:>10} {:>10}  {:>8} {:>8}",
        "size", "baseline", "JigSaw", "JigSaw-M", "gain", "gain-M"
    );

    for n in [4usize, 6, 8, 10, 12, 14] {
        let b = bench::ghz(n);
        let correct = resolve_correct_set(&b);

        let jig_cfg = JigsawConfig { compiler, ..JigsawConfig::jigsaw(trials) }.with_seed(7);
        let shared =
            JigsawPipeline::plan(b.circuit(), &device, &jig_cfg).compile_global().run_global();
        // The baseline executes the same measure-all artifact the shared
        // stage compiled — no second placement search.
        let reference = ReferenceConfig::new(trials).with_seed(7).with_compiler(compiler);
        let baseline = run_baseline_from(shared.artifact(), &device, &reference);
        let jig = shared.clone().select_subsets().run_cpms().reconstruct();
        let jm =
            shared.with_subset_sizes(vec![2, 3, 4, 5]).select_subsets().run_cpms().reconstruct();

        let p_base = metrics::pst(&baseline, &correct);
        let p_jig = metrics::pst(&jig.output, &correct);
        let p_jm = metrics::pst(&jm.output, &correct);
        println!(
            "{n:>5}  {p_base:>10.4} {p_jig:>10.4} {p_jm:>10.4}  {:>7.2}x {:>7.2}x",
            p_jig / p_base,
            p_jm / p_base
        );
    }
    println!();
    println!("Expected: baseline PST collapses with size; JigSaw's gain widens.");
}
