//! Inside JigSaw-M: watch the hierarchical reconstruction sharpen the
//! global PMF one subset-size layer at a time (largest first, §4.4.2), and
//! export the program via OpenQASM for inspection in other tooling.
//!
//! ```text
//! cargo run --release --example multilayer_reconstruction
//! ```

use jigsaw_repro::circuit::{bench, qasm};
use jigsaw_repro::compiler::cpm::recompile_cpm;
use jigsaw_repro::compiler::{compile, CompilerOptions};
use jigsaw_repro::core::subsets::sliding_window;
use jigsaw_repro::core::{reconstruct, Marginal, ReconstructionConfig};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::{metrics, Pmf};
use jigsaw_repro::sim::{ideal_pmf, resolve_correct_set, Executor, RunConfig};

fn main() {
    let device = Device::toronto();
    let bench = bench::ghz(12);
    let correct = resolve_correct_set(&bench);
    let trials: u64 = jigsaw_repro::example_budget(16_384);
    let compiler = CompilerOptions::default();
    let executor = Executor::new(&device);

    // Export the program for external tooling.
    let mut printable = bench.circuit().clone();
    printable.measure_all();
    let qasm_text = qasm::to_qasm(&printable);
    println!(
        "{} as OpenQASM ({} lines), first three statements:",
        bench.name(),
        qasm_text.lines().count()
    );
    for line in qasm_text.lines().skip(2).take(3) {
        println!("  {line}");
    }
    println!();

    // Global mode.
    let global = compile(&printable, &device, &compiler);
    let global_pmf =
        executor.run(global.circuit(), trials / 2, &RunConfig::default().with_seed(1)).to_pmf();

    let mut ideal_circuit = bench.circuit().clone();
    ideal_circuit.measure_all();
    let ideal: Pmf = ideal_pmf(&ideal_circuit);

    println!(
        "{} on {}: global mode PST {:.4}, fidelity {:.4}",
        bench.name(),
        device.name(),
        metrics::pst(&global_pmf, &correct),
        metrics::fidelity(&ideal, &global_pmf)
    );
    println!();
    println!("Hierarchical reconstruction, largest subsets first:");

    let mut current = global_pmf;
    for (i, size) in [5usize, 4, 3, 2].into_iter().enumerate() {
        let windows = sliding_window(12, size);
        let per_cpm = trials / 2 / (4 * windows.len() as u64);
        let marginals: Vec<Marginal> = windows
            .iter()
            .enumerate()
            .map(|(k, subset)| {
                let cpm = recompile_cpm(bench.circuit(), subset, &device, &compiler);
                let counts = executor.run(
                    cpm.circuit(),
                    per_cpm.max(1),
                    &RunConfig::default().with_seed(100 + (i * 100 + k) as u64),
                );
                Marginal::new(subset.clone(), counts.to_pmf())
            })
            .collect();
        let result = reconstruct(&current, &marginals, &ReconstructionConfig::default());
        current = result.pmf;
        println!(
            "  after size-{size} layer ({} CPMs, {} rounds): PST {:.4}, fidelity {:.4}",
            marginals.len(),
            result.rounds,
            metrics::pst(&current, &correct),
            metrics::fidelity(&ideal, &current)
        );
    }
    println!();
    println!("Each layer trades correlation knowledge against measurement fidelity;");
    println!("the big early layers preserve global structure, later ones sharpen it");
    println!("(individual layers can dip — the full pipeline splits trials 4 ways).");
}
