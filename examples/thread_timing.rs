//! Diagnostic: wall-clock of the JigSaw-M pipeline at `threads = 1`
//! (serial) vs `threads = 0` (all cores), demonstrating that the
//! parallelism knob changes timing but never the result — with the staged
//! API's per-stage telemetry showing *which* stages the team accelerates.
//!
//! ```text
//! cargo run --release --example thread_timing
//! JIGSAW_TRIALS=2000 cargo run --release --example thread_timing
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::core::{run_jigsaw, JigsawConfig};
use jigsaw_repro::device::Device;

fn main() {
    let device = Device::toronto();
    let b = bench::ghz(10);
    let trials = jigsaw_repro::example_budget(40_000);
    let mut outputs = Vec::new();
    for threads in [1usize, 0] {
        let mut cfg = JigsawConfig::jigsaw_m(trials).with_seed(5);
        cfg.run = cfg.run.with_threads(threads);
        let t0 = std::time::Instant::now();
        let r = run_jigsaw(b.circuit(), &device, &cfg);
        println!(
            "threads={threads}: {:?} (rounds {}, marginals {})",
            t0.elapsed(),
            r.rounds,
            r.marginals.len()
        );
        println!("{}", r.timings);
        outputs.push(r.output);
    }
    assert_eq!(outputs[0], outputs[1], "thread count must not change the reconstruction");
    println!("serial and parallel reconstructions are bit-identical");
}
