//! Diagnostic: wall-clock of the JigSaw-M pipeline at `threads = 1`
//! (serial) vs `threads = 0` (all cores), demonstrating that the
//! parallelism knob changes timing but never the result.
//!
//! ```text
//! cargo run --release --example thread_timing
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::core::{run_jigsaw, JigsawConfig};
use jigsaw_repro::device::Device;

fn main() {
    let device = Device::toronto();
    let b = bench::ghz(10);
    let mut outputs = Vec::new();
    for threads in [1usize, 0] {
        let mut cfg = JigsawConfig::jigsaw_m(40_000).with_seed(5);
        cfg.run = cfg.run.with_threads(threads);
        let t0 = std::time::Instant::now();
        let r = run_jigsaw(b.circuit(), &device, &cfg);
        println!(
            "threads={threads}: {:?} (rounds {}, marginals {})",
            t0.elapsed(),
            r.rounds,
            r.marginals.len()
        );
        outputs.push(r.output);
    }
    assert_eq!(outputs[0], outputs[1], "thread count must not change the reconstruction");
    println!("serial and parallel reconstructions are bit-identical");
}
