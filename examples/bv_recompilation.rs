//! CPM recompilation under the microscope: per-qubit readout accuracy of a
//! BV-6 program, baseline global measurement versus recompiled 2-qubit
//! CPMs (the paper's Fig. 10 mechanism).
//!
//! ```text
//! cargo run --release --example bv_recompilation
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::compiler::cpm::recompile_cpm;
use jigsaw_repro::compiler::{compile, CompilerOptions};
use jigsaw_repro::core::subsets::sliding_window;
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::Counts;
use jigsaw_repro::sim::{resolve_correct_set, Executor, RunConfig};

fn bit_accuracy(counts: &Counts, clbit: usize, expected: bool) -> f64 {
    let hit: u64 = counts.iter().filter(|(b, _)| b.bit(clbit) == expected).map(|(_, c)| c).sum();
    hit as f64 / counts.total() as f64
}

fn main() {
    let device = Device::toronto();
    let b = bench::bernstein_vazirani(6, 0b10110);
    let answer = resolve_correct_set(&b)[0];
    let trials: u64 = jigsaw_repro::example_budget(16_384);
    let options = CompilerOptions::default();
    let executor = Executor::new(&device);

    // Baseline: all six qubits measured together.
    let mut global = b.circuit().clone();
    global.measure_all();
    let compiled = compile(&global, &device, &options);
    let base_counts = executor.run(compiled.circuit(), trials, &RunConfig::default().with_seed(1));

    println!("BV-6 on {}: secret 10110, answer {answer}", device.name());
    println!("Global mapping measures physical qubits {:?}", compiled.circuit().measured_qubits());
    println!();
    println!(
        "{:>6}  {:>9}  {:>11}  {:>11}  {:>6}",
        "qubit", "baseline", "CPM qubits", "CPM accuracy", "gain"
    );

    for subset in sliding_window(6, 2) {
        let cpm = recompile_cpm(b.circuit(), &subset, &device, &options);
        let counts = executor.run(
            cpm.circuit(),
            trials / 6,
            &RunConfig::default().with_seed(1 + subset[0] as u64),
        );
        let physical = cpm.circuit().measured_qubits();
        for (k, &q) in subset.iter().enumerate() {
            let base = bit_accuracy(&base_counts, q, answer.bit(q));
            let local = bit_accuracy(&counts, k, answer.bit(q));
            println!(
                "{:>6}  {:>9.4}  {:>11}  {:>11.4}  {:>5.2}x",
                format!("q{q}"),
                base,
                format!("Q{}", physical[k]),
                local,
                local / base
            );
        }
    }
    println!();
    println!("Each CPM lands its two measurements on strong physical qubits and");
    println!("dodges the crosstalk of six simultaneous readouts.");
}
