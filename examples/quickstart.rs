//! Quickstart: mitigate measurement errors on a GHZ-8 program with JigSaw.
//!
//! ```text
//! cargo run --release --example quickstart
//! JIGSAW_TRIALS=2000 cargo run --release --example quickstart   # smaller budget
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::core::{run_baseline, run_jigsaw, JigsawConfig, ReferenceConfig};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::metrics;
use jigsaw_repro::sim::resolve_correct_set;

fn main() {
    // 1. A NISQ machine model: the 27-qubit Toronto stand-in, with spatially
    //    varying readout errors and measurement crosstalk.
    let device = Device::toronto();

    // 2. A program: GHZ-8 (correct answers: all-zeros and all-ones).
    let bench = bench::ghz(8);
    let correct = resolve_correct_set(&bench);
    let trials = jigsaw_repro::example_budget(16_384);

    // 3. Baseline: noise-aware compile, every trial measures all qubits.
    let baseline =
        run_baseline(bench.circuit(), &device, &ReferenceConfig::new(trials).with_seed(2021));

    // 4. JigSaw: half the trials global, half on 2-qubit CPMs, fused by
    //    Bayesian reconstruction.
    let config = JigsawConfig::jigsaw(trials).with_seed(2021);
    let result = run_jigsaw(bench.circuit(), &device, &config);

    let pst_base = metrics::pst(&baseline, &correct);
    let pst_jig = metrics::pst(&result.output, &correct);
    println!("GHZ-8 on {} ({} trials each):", device.name(), trials);
    println!("  baseline PST: {pst_base:.4}");
    println!("  JigSaw  PST: {pst_jig:.4}  ({:.2}x)", pst_jig / pst_base);
    println!("  global-mode EPS: {:.4}", result.global_eps);
    println!("  CPMs used: {}, reconstruction rounds: {}", result.marginals.len(), result.rounds);

    // 5. Top outcomes after reconstruction.
    println!("\nTop outcomes (JigSaw output):");
    for (outcome, p) in result.output.top_k(4) {
        let marker = if correct.contains(&outcome) { " <- correct" } else { "" };
        println!("  {outcome}  {p:.4}{marker}");
    }

    // 6. Where the time went, stage by stage (Fig. 4 order).
    println!("\nStage timings:");
    println!("{}", result.timings);
}
