//! QAOA MaxCut with measurement-error mitigation: runs QAOA-10 (p = 2) on
//! the Paris model and reports the application-level metric the paper uses
//! for variational workloads — the Approximation Ratio Gap.
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! JIGSAW_TRIALS=2000 cargo run --release --example qaoa_maxcut
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::circuit::qaoa::approximation_ratio_gap;
use jigsaw_repro::compiler::CompilerOptions;
use jigsaw_repro::core::{run_baseline_from, JigsawConfig, JigsawPipeline, ReferenceConfig};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::metrics;
use jigsaw_repro::sim::{ideal_pmf, resolve_correct_set};

fn main() {
    let device = Device::paris();
    let b = bench::qaoa_maxcut(10, 2);
    let (graph, angles) = b.qaoa().expect("QAOA benchmark");
    let trials = jigsaw_repro::example_budget(16_384);
    let compiler = CompilerOptions::default();

    let mut ideal_circuit = b.circuit().clone();
    ideal_circuit.measure_all();
    let ideal = ideal_pmf(&ideal_circuit);
    let ar_ideal = graph.approximation_ratio(&ideal);
    let correct = resolve_correct_set(&b);

    println!(
        "{} on {}: {} vertices, {} edges, p = {}",
        b.name(),
        device.name(),
        graph.n_vertices(),
        graph.n_edges(),
        angles.layers()
    );
    println!("Noise-free approximation ratio with ramp angles: {ar_ideal:.4}");
    println!();

    // JigSaw and JigSaw-M share the global stages; fork after the global
    // run. The baseline executes the same measure-all artifact.
    let shared = JigsawPipeline::plan(
        b.circuit(),
        &device,
        &JigsawConfig { compiler, ..JigsawConfig::jigsaw(trials) }.with_seed(3),
    )
    .compile_global()
    .run_global();
    let baseline = run_baseline_from(
        shared.artifact(),
        &device,
        &ReferenceConfig::new(trials).with_seed(3).with_compiler(compiler),
    );
    let jig = shared.clone().select_subsets().run_cpms().reconstruct();
    let jm = shared.with_subset_sizes(vec![2, 3, 4, 5]).select_subsets().run_cpms().reconstruct();

    for (name, pmf) in [("Baseline", &baseline), ("JigSaw", &jig.output), ("JigSaw-M", &jm.output)]
    {
        let ar = graph.approximation_ratio(pmf);
        let arg = approximation_ratio_gap(ar_ideal, ar);
        let pst = metrics::pst(pmf, &correct);
        println!("{name:>9}: AR {ar:.4}  ARG {arg:6.2} %  PST(optima) {pst:.4}");
    }
    println!();
    println!("Expected: JigSaw shrinks the ARG versus baseline; JigSaw-M shrinks it further.");
}
