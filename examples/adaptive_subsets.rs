//! Adaptive subsetting: steer the CPM choice with the global-mode PMF.
//!
//! The scenario only the staged API can express: after the global run, the
//! prior already reveals which qubits are uncertain (high marginal entropy)
//! and which move together (high pairwise mutual information).
//! `SubsetSelection::Adaptive` groups correlated qubits into shared CPMs —
//! so the Bayesian update corrects their *joint* marginal — and covers
//! every program qubit greedily, highest-entropy first (§4.3's coverage
//! argument, pushed in the QuTracer qubit-subset-tracing direction).
//!
//! Both policies fork the same `GlobalRun`, so the comparison is exact:
//! identical compile, identical prior, identical budgets — only the
//! subsets differ.
//!
//! ```text
//! cargo run --release --example adaptive_subsets
//! JIGSAW_TRIALS=2000 cargo run --release --example adaptive_subsets
//! ```

use jigsaw_repro::circuit::bench;
use jigsaw_repro::compiler::CompilerOptions;
use jigsaw_repro::core::{JigsawConfig, JigsawPipeline, SubsetSelection};
use jigsaw_repro::device::Device;
use jigsaw_repro::pmf::metrics;
use jigsaw_repro::sim::resolve_correct_set;

fn main() {
    // The noisy Toronto preset; QAOA-10 has non-trivial correlation
    // structure for the mutual-information ranking to find.
    let device = Device::toronto();
    let b = bench::qaoa_maxcut(10, 1);
    let n = b.circuit().n_qubits();
    let correct = resolve_correct_set(&b);
    let trials = jigsaw_repro::example_budget(16_384);
    let compiler = CompilerOptions { max_seeds: 6, ..CompilerOptions::default() };

    let cfg = JigsawConfig { compiler, ..JigsawConfig::jigsaw(trials) }.with_seed(11);
    let shared = JigsawPipeline::plan(b.circuit(), &device, &cfg).compile_global().run_global();
    println!(
        "{} on {}: global prior over {} outcomes, entropy {:.3} bits",
        b.name(),
        device.name(),
        shared.global_pmf().support_size(),
        metrics::entropy(shared.global_pmf()),
    );
    println!();

    let sliding = shared.clone().select_subsets().run_cpms().reconstruct();

    let adaptive_stage = shared.with_selection(SubsetSelection::Adaptive).select_subsets();
    println!("Adaptive CPM subsets (anchored on high-entropy qubits, grown by MI):");
    for layer in adaptive_stage.layers() {
        for subset in &layer.subsets {
            println!("  {subset:?}");
        }
    }
    let adaptive = adaptive_stage.run_cpms().reconstruct();
    for q in 0..n {
        assert!(
            adaptive.marginals.iter().any(|m| m.qubits.contains(&q)),
            "qubit {q} uncovered by adaptive selection"
        );
    }
    println!("  (every program qubit covered)");
    println!();

    let pst_slide = metrics::pst(&sliding.output, &correct);
    let pst_adapt = metrics::pst(&adaptive.output, &correct);
    println!("Sliding window: {} CPMs, PST {pst_slide:.4}", sliding.marginals.len());
    println!(
        "Adaptive      : {} CPMs, PST {pst_adapt:.4}  ({:+.1} % vs sliding)",
        adaptive.marginals.len(),
        (pst_adapt / pst_slide - 1.0) * 100.0
    );
    println!();
    println!("Adaptive stage timings:");
    println!("{}", adaptive.timings);
}
