//! Scalability projection: what JigSaw post-processing costs at 100–500
//! qubits (paper §7 / Table 7), plus a live measurement confirming the
//! reconstruction's linear runtime on synthetic PMFs.
//!
//! ```text
//! cargo run --release --example scaling_projection
//! ```

use std::time::Instant;

use jigsaw_repro::core::scalability::ScalabilityInput;
use jigsaw_repro::core::{reconstruction_round, Marginal};
use jigsaw_repro::pmf::{BitString, Pmf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("JigSaw post-processing cost projections (Equation 5 / §7.3):");
    println!();
    println!(
        "{:>7} {:>9} {:>8}  {:>12} {:>10}  {:>14} {:>12}",
        "qubits", "eps", "trials", "JigSaw mem", "JigSaw ops", "JigSaw-M mem", "JigSaw-M ops"
    );
    for n in [100usize, 200, 500] {
        for (eps, trials) in [(0.05, 1u64 << 20), (1.0, 1u64 << 20)] {
            let j = ScalabilityInput::paper_jigsaw(n, eps, trials);
            let m = ScalabilityInput::paper_jigsaw_m(n, eps, trials);
            println!(
                "{n:>7} {eps:>9} {:>8}  {:>9.2} GB {:>8.0} M  {:>11.2} GB {:>10.0} M",
                "1M",
                j.memory_gb(),
                j.operations_millions(),
                m.memory_gb(),
                m.operations_millions()
            );
        }
    }

    println!();
    println!("Live check — reconstruction round on synthetic 64-qubit PMFs:");
    println!();
    // Fixed demo seed: the synthetic PMFs here feed a wall-clock
    // projection, not a result figure.
    const DEMO_SEED: u64 = 11;
    let mut rng = StdRng::seed_from_u64(DEMO_SEED);
    for entries in [2_000usize, 4_000, 8_000, 16_000] {
        let mut p = Pmf::new(64);
        while p.support_size() < entries {
            let mut b = BitString::zeros(64);
            for i in 0..64 {
                if rng.gen::<bool>() {
                    b.set_bit(i, true);
                }
            }
            p.add(b, rng.gen::<f64>() + 1e-3);
        }
        p.normalize();
        let marginals: Vec<Marginal> = (0..64usize)
            .map(|i| {
                let qubits = vec![i, (i + 1) % 64];
                let mut pmf = Pmf::new(2);
                for v in 0..4u64 {
                    pmf.set(BitString::from_u64(v, 2), rng.gen::<f64>() + 1e-3);
                }
                pmf.normalize();
                Marginal::new(qubits, pmf)
            })
            .collect();
        let t0 = Instant::now();
        let out = reconstruction_round(&p, &marginals);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {entries:>6} entries x 64 CPMs: {dt:8.2} ms   (support {} -> {})",
            entries,
            out.support_size()
        );
    }
    println!();
    println!("Doubling the entries doubles the round time: linear, as Table 7 promises.");
}
