#![forbid(unsafe_code)]
//! Facade crate re-exporting the JigSaw reproduction workspace.
pub use jigsaw_circuit as circuit;
pub use jigsaw_compiler as compiler;
pub use jigsaw_core as core;
pub use jigsaw_device as device;
pub use jigsaw_pmf as pmf;
pub use jigsaw_server as server;
pub use jigsaw_sim as sim;

/// Trial budget for the `examples/`: the `JIGSAW_TRIALS` environment
/// variable when set and parseable, otherwise `default`. CI runs every
/// example at `JIGSAW_TRIALS=2000` to keep the smoke fast.
#[must_use]
pub fn example_budget(default: u64) -> u64 {
    std::env::var("JIGSAW_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
