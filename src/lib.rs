//! Facade crate re-exporting the JigSaw reproduction workspace.
pub use jigsaw_circuit as circuit;
pub use jigsaw_compiler as compiler;
pub use jigsaw_core as core;
pub use jigsaw_device as device;
pub use jigsaw_pmf as pmf;
pub use jigsaw_sim as sim;
