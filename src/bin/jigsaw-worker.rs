//! A distributed-sweep worker: one `jigsaw-server` process that serves
//! shard frames until a peer sends `Shutdown`.
//!
//! The binary exists so the distributed test battery and `dist_bench` can
//! spawn *real* worker processes — scatter/merge bit-identity is only a
//! theorem worth having if it holds across process boundaries, not just
//! across threads. On startup the worker binds a free loopback port and
//! prints a single `PORT=<n>` line to stdout; the spawner parses that
//! line to learn the address.
//!
//! ```text
//! jigsaw-worker [--handlers N] [--die-after-shards N]
//! ```
//!
//! `--die-after-shards N` arms the fault-injection knob: the process
//! exits with code 86 upon receiving its N-th `SubmitShard` frame,
//! before replying — the fault suites use it to simulate a worker killed
//! mid-shard and prove the driver reassigns the shard with identical
//! bytes.

use std::io::Write;
use std::process::ExitCode;

use jigsaw_repro::server::server::{serve, ServerConfig};

fn main() -> ExitCode {
    let mut handlers = 2_usize;
    let mut die_after_shards = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next().and_then(|v| v.parse::<u64>().ok()).ok_or_else(|| {
                eprintln!("jigsaw-worker: {flag} needs a non-negative integer");
            })
        };
        match arg.as_str() {
            "--handlers" => match value(&mut args, "--handlers") {
                Ok(n) => handlers = (n as usize).max(1),
                Err(()) => return ExitCode::FAILURE,
            },
            "--die-after-shards" => match value(&mut args, "--die-after-shards") {
                Ok(n) => die_after_shards = Some(n),
                Err(()) => return ExitCode::FAILURE,
            },
            other => {
                eprintln!("jigsaw-worker: unknown argument {other:?}");
                eprintln!("usage: jigsaw-worker [--handlers N] [--die-after-shards N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let spill = std::env::temp_dir().join(format!("jigsaw-worker-{}", std::process::id()));
    let mut config = ServerConfig::new(spill).with_handlers(handlers);
    config.die_after_shards = die_after_shards;
    let handle = match serve(&config) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("jigsaw-worker: bind failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    // The one line the spawner contractually parses.
    println!("PORT={}", handle.addr().port());
    let _ = std::io::stdout().flush();

    handle.wait();
    ExitCode::SUCCESS
}
